#include "numeric/solve_dense.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::numeric {

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  if (!lu_.square()) throw std::invalid_argument("LU: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    std::size_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) {
      singular_ = true;
      continue;
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  if (singular_) throw std::domain_error("LU::solve: singular matrix");
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU::solve: size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Backward substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuFactorization::solve(const Matrix& b) const {
  if (b.rows() != lu_.rows()) throw std::invalid_argument("LU::solve: shape mismatch");
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const Vector sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

double LuFactorization::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

CholeskyFactorization::CholeskyFactorization(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (acc <= 0.0) throw std::domain_error("Cholesky: matrix not positive definite");
        l_(i, i) = std::sqrt(acc);
      } else {
        l_(i, j) = acc / l_(j, j);
      }
    }
  }
}

Vector CholeskyFactorization::solve_lower(const Vector& b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument("Cholesky: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  return y;
}

Vector CholeskyFactorization::solve_lower_transposed(const Vector& b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument("Cholesky: size mismatch");
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Vector CholeskyFactorization::solve(const Vector& b) const {
  return solve_lower_transposed(solve_lower(b));
}

Vector solve(const Matrix& a, const Vector& b) { return LuFactorization(a).solve(b); }

Matrix inverse(const Matrix& a) { return LuFactorization(a).solve(Matrix::identity(a.rows())); }

void solve_complex(const Matrix& ar, const Matrix& ai, const Vector& br, const Vector& bi,
                   Vector& xr, Vector& xi) {
  const std::size_t n = ar.rows();
  if (!ar.square() || !ai.square() || ai.rows() != n || br.size() != n || bi.size() != n)
    throw std::invalid_argument("solve_complex: shape mismatch");
  // [ Ar -Ai ] [xr]   [br]
  // [ Ai  Ar ] [xi] = [bi]
  Matrix big(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      big(i, j) = ar(i, j);
      big(i, n + j) = -ai(i, j);
      big(n + i, j) = ai(i, j);
      big(n + i, n + j) = ar(i, j);
    }
  Vector rhs(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = br[i];
    rhs[n + i] = bi[i];
  }
  const Vector sol = solve(big, rhs);
  xr.assign(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
  xi.assign(sol.begin() + static_cast<std::ptrdiff_t>(n), sol.end());
}

Vector solve_tridiagonal(const Vector& lower, const Vector& diag, const Vector& upper,
                         const Vector& rhs) {
  const std::size_t n = diag.size();
  if (n == 0 || lower.size() != n - 1 || upper.size() != n - 1 || rhs.size() != n)
    throw std::invalid_argument("solve_tridiagonal: size mismatch");
  Vector c(n - 1), d(n);
  double beta = diag[0];
  if (beta == 0.0) throw std::domain_error("solve_tridiagonal: zero pivot");
  d[0] = rhs[0] / beta;
  for (std::size_t i = 1; i < n; ++i) {
    c[i - 1] = upper[i - 1] / beta;
    beta = diag[i] - lower[i - 1] * c[i - 1];
    if (beta == 0.0) throw std::domain_error("solve_tridiagonal: zero pivot");
    d[i] = (rhs[i] - lower[i - 1] * d[i - 1]) / beta;
  }
  for (std::size_t ii = n - 1; ii-- > 0;) d[ii] -= c[ii] * d[ii + 1];
  return d;
}

}  // namespace aeropack::numeric
