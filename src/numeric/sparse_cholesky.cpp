#include "numeric/sparse_cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"

namespace aeropack::numeric {

SkylineCholesky::SkylineCholesky(const CsrMatrix& a, std::size_t max_envelope) : n_(a.rows()) {
  if (a.rows() != a.cols() || n_ == 0)
    throw std::invalid_argument("SkylineCholesky: matrix must be square and non-empty");

  // Envelope of the lower triangle: row i spans [first_[i], i]. Fill-in from
  // the factorization stays inside the envelope, so it is computed once from
  // the input structure.
  first_.resize(n_);
  offset_.resize(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    // Columns are sorted, so the row's first stored column is the edge.
    const std::size_t k0 = a.row_ptr()[i];
    std::size_t first = i;
    if (k0 < a.row_ptr()[i + 1] && a.col_idx()[k0] < i) first = a.col_idx()[k0];
    first_[i] = first;
    offset_[i + 1] = offset_[i] + (i - first + 1);
  }
  if (offset_[n_] > max_envelope)
    throw std::length_error("SkylineCholesky: envelope too large");
  values_.assign(offset_[n_], 0.0);

  // Copy the lower triangle of A into the envelope.
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      if (j > i) break;
      l(i, j) = a.values()[k];
    }

  // Row-oriented envelope factorization.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = first_[i]; j < i; ++j) {
      double sum = l(i, j);
      const std::size_t lo = std::max(first_[i], first_[j]);
      for (std::size_t k = lo; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
    double diag = l(i, i);
    for (std::size_t k = first_[i]; k < i; ++k) diag -= l(i, k) * l(i, k);
    if (!(diag > 0.0) || !std::isfinite(diag))
      throw std::domain_error("SkylineCholesky: matrix not positive definite");
    l(i, i) = std::sqrt(diag);
  }

  // Counted only on success: indefinite/over-budget attempts are reported by
  // the shift-ladder instrumentation in eigen.cpp instead.
  static thread_local obs::CounterHandle factorizations{"numeric.skyline.factorizations"};
  factorizations.add();
  if (obs::enabled()) {
    static thread_local obs::GaugeHandle envelope{"numeric.skyline.last_envelope"};
    envelope.set(static_cast<double>(offset_[n_]));
  }
}

Vector SkylineCholesky::solve(const Vector& b) const {
  if (b.size() != n_) throw std::invalid_argument("SkylineCholesky::solve: size mismatch");
  Vector x = b;
  // Forward: L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = x[i];
    for (std::size_t k = first_[i]; k < i; ++k) sum -= l(i, k) * x[k];
    x[i] = sum / l(i, i);
  }
  // Backward: L^T x = y, column sweep.
  for (std::size_t ip = n_; ip > 0; --ip) {
    const std::size_t i = ip - 1;
    x[i] /= l(i, i);
    for (std::size_t k = first_[i]; k < i; ++k) x[k] -= l(i, k) * x[i];
  }
  return x;
}

}  // namespace aeropack::numeric
