#include "numeric/interp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/solve_dense.hpp"

namespace aeropack::numeric {

namespace {
void check_table(const Vector& x, const Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("interp: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("interp: need at least 2 points");
  for (std::size_t i = 1; i < x.size(); ++i)
    if (x[i] <= x[i - 1]) throw std::invalid_argument("interp: x must be strictly increasing");
}
}  // namespace

LinearTable::LinearTable(Vector x, Vector y) : x_(std::move(x)), y_(std::move(y)) {
  check_table(x_, y_);
}

std::size_t LinearTable::segment(double x) const {
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(std::distance(x_.begin(), it));
  return std::clamp<std::size_t>(hi, 1, x_.size() - 1) - 1;
}

double LinearTable::operator()(double x) const {
  if (x_.empty()) throw std::logic_error("LinearTable: empty");
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const std::size_t i = segment(x);
  const double t = (x - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double LinearTable::extrapolate(double x) const {
  if (x_.empty()) throw std::logic_error("LinearTable: empty");
  const std::size_t i = segment(std::clamp(x, x_.front(), x_.back()));
  const double t = (x - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double LinearTable::integral() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < x_.size(); ++i)
    acc += 0.5 * (y_[i] + y_[i - 1]) * (x_[i] - x_[i - 1]);
  return acc;
}

LogLogTable::LogLogTable(Vector x, Vector y) {
  check_table(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0)
      throw std::invalid_argument("LogLogTable: values must be positive");
    x[i] = std::log10(x[i]);
    y[i] = std::log10(y[i]);
  }
  log_table_ = LinearTable(std::move(x), std::move(y));
}

double LogLogTable::operator()(double x) const {
  if (x <= 0.0) throw std::invalid_argument("LogLogTable: x must be positive");
  return std::pow(10.0, log_table_(std::log10(x)));
}

double LogLogTable::x_min() const { return std::pow(10.0, log_table_.x_min()); }
double LogLogTable::x_max() const { return std::pow(10.0, log_table_.x_max()); }

double LogLogTable::integral(double a, double b) const {
  if (a <= 0.0 || b <= a) throw std::invalid_argument("LogLogTable::integral: bad range");
  // Integrate each power-law segment exactly. Sample segment boundaries from
  // the clamped range plus the knots in between.
  const double lo = std::max(a, x_min());
  const double hi = std::min(b, x_max());
  double acc = 0.0;
  // Clamped tails (constant y outside the table):
  if (a < lo) acc += (*this)(x_min()) * (lo - a);
  if (b > hi && hi >= lo) acc += (*this)(x_max()) * (b - hi);
  if (hi <= lo) return acc;

  // Walk knot intervals inside [lo, hi].
  Vector knots{lo};
  const double eps = 1e-12;
  // Reconstruct knot abscissae from the log table by probing: store them at
  // construction instead would be cleaner; derive from integral subdivision.
  // We subdivide finely in log space — each sub-interval of a power-law is
  // still integrated exactly, so 200 subdivisions gives machine accuracy as
  // long as segments are power laws between consecutive samples.
  constexpr std::size_t kSub = 400;
  const double llo = std::log10(lo), lhi = std::log10(hi);
  for (std::size_t i = 1; i <= kSub; ++i)
    knots.push_back(std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) / kSub));
  for (std::size_t i = 1; i < knots.size(); ++i) {
    const double x0 = knots[i - 1];
    const double x1 = knots[i];
    if (x1 - x0 < eps) continue;
    const double y0 = (*this)(x0);
    const double y1 = (*this)(x1);
    const double m = std::log(y1 / y0) / std::log(x1 / x0);
    if (std::fabs(m + 1.0) < 1e-9) {
      acc += y0 * x0 * std::log(x1 / x0);
    } else {
      acc += y0 / std::pow(x0, m) * (std::pow(x1, m + 1.0) - std::pow(x0, m + 1.0)) / (m + 1.0);
    }
  }
  return acc;
}

CubicSpline::CubicSpline(Vector x, Vector y) : x_(std::move(x)), y_(std::move(y)) {
  check_table(x_, y_);
  const std::size_t n = x_.size();
  m_.assign(n, 0.0);
  if (n == 2) return;
  // Natural spline: solve tridiagonal system for interior second derivatives.
  const std::size_t ni = n - 2;
  Vector lower(ni - 1 + (ni == 0 ? 1 : 0), 0.0), diag(ni, 0.0), upper(ni > 1 ? ni - 1 : 0, 0.0),
      rhs(ni, 0.0);
  lower.assign(ni > 1 ? ni - 1 : 0, 0.0);
  for (std::size_t i = 1; i <= ni; ++i) {
    const double h0 = x_[i] - x_[i - 1];
    const double h1 = x_[i + 1] - x_[i];
    diag[i - 1] = 2.0 * (h0 + h1);
    if (i > 1) lower[i - 2] = h0;
    if (i < ni) upper[i - 1] = h1;
    rhs[i - 1] = 6.0 * ((y_[i + 1] - y_[i]) / h1 - (y_[i] - y_[i - 1]) / h0);
  }
  const Vector sol = solve_tridiagonal(lower, diag, upper, rhs);
  for (std::size_t i = 0; i < ni; ++i) m_[i + 1] = sol[i];
}

double CubicSpline::operator()(double x) const {
  if (x_.empty()) throw std::logic_error("CubicSpline: empty");
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t i = static_cast<std::size_t>(std::distance(x_.begin(), it)) - 1;
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * m_[i] + (b * b * b - b) * m_[i + 1]) * h * h / 6.0;
}

double CubicSpline::derivative(double x) const {
  if (x_.empty()) throw std::logic_error("CubicSpline: empty");
  const double xc = std::clamp(x, x_.front(), x_.back());
  auto it = std::upper_bound(x_.begin(), x_.end(), xc);
  std::size_t i = static_cast<std::size_t>(std::distance(x_.begin(), it));
  i = std::clamp<std::size_t>(i, 1, x_.size() - 1) - 1;
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - xc) / h;
  const double b = (xc - x_[i]) / h;
  return (y_[i + 1] - y_[i]) / h - (3.0 * a * a - 1.0) / 6.0 * h * m_[i] +
         (3.0 * b * b - 1.0) / 6.0 * h * m_[i + 1];
}

}  // namespace aeropack::numeric
