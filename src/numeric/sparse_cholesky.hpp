// Skyline (envelope) Cholesky factorization for sparse SPD matrices.
//
// The FEM stack's reduced stiffness matrices are banded under the natural
// row-major node ordering, so an envelope factorization — storing each row
// of L from its first structural nonzero to the diagonal — gives direct
// O(n b^2) solves where the dense path costs O(n^3). This is the inner
// factorization of the shift-invert modal solver (numeric/eigen.hpp); when
// the envelope would be too large, callers fall back to conjugate_gradient.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::numeric {

/// Envelope Cholesky A = L L^T of a symmetric positive-definite CSR matrix.
/// Only the lower triangle of `a` is read (the structure is assumed
/// symmetric, which FEM assembly guarantees).
///
/// Throws std::domain_error if the matrix is not numerically positive
/// definite, std::length_error if the envelope exceeds `max_envelope`
/// entries (callers should fall back to an iterative solve).
class SkylineCholesky {
 public:
  explicit SkylineCholesky(const CsrMatrix& a,
                           std::size_t max_envelope = std::size_t{1} << 28);

  std::size_t size() const { return n_; }
  /// Stored entries of L (the envelope), for diagnostics/benches.
  std::size_t envelope_size() const { return values_.size(); }

  /// Solve A x = b (forward + backward substitution). Serial and therefore
  /// bit-deterministic across thread counts.
  Vector solve(const Vector& b) const;

 private:
  double& l(std::size_t i, std::size_t j) { return values_[offset_[i] + j - first_[i]]; }
  double l(std::size_t i, std::size_t j) const { return values_[offset_[i] + j - first_[i]]; }

  std::size_t n_ = 0;
  std::vector<std::size_t> first_;   ///< first stored column of each row
  std::vector<std::size_t> offset_;  ///< row start in values_
  std::vector<double> values_;       ///< rows first_[i]..i, contiguous
};

}  // namespace aeropack::numeric
