#include "numeric/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "numeric/cheby.hpp"
#include "numeric/parallel.hpp"
#include "obs/registry.hpp"

namespace aeropack::numeric {

SparseBuilder::SparseBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("SparseBuilder: zero dimension");
}

void SparseBuilder::add(std::size_t i, std::size_t j, double v) {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("SparseBuilder::add");
  entries_.push_back({i, j, v});
}

CsrMatrix SparseBuilder::build() const {
  std::vector<std::size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), 0);
  // Tie-break equal (i,j) keys by insertion index so duplicate entries
  // accumulate in the order they were added — FEM assembly then sums element
  // contributions in element order, bit-identical to a dense scatter loop.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Entry& ea = entries_[a];
    const Entry& eb = entries_[b];
    if (ea.i != eb.i) return ea.i < eb.i;
    if (ea.j != eb.j) return ea.j < eb.j;
    return a < b;
  });

  std::vector<std::size_t> row_count(rows_, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(entries_.size());
  values.reserve(entries_.size());

  bool have_last = false;
  std::size_t last_i = 0, last_j = 0;
  for (const std::size_t k : order) {
    const Entry& e = entries_[k];
    if (have_last && e.i == last_i && e.j == last_j) {
      values.back() += e.v;  // duplicate entry: accumulate
    } else {
      col_idx.push_back(e.j);
      values.push_back(e.v);
      ++row_count[e.i];
      last_i = e.i;
      last_j = e.j;
      have_last = true;
    }
  }
  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  for (std::size_t r = 0; r < rows_; ++r) row_ptr[r + 1] = row_ptr[r] + row_count[r];
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  if (row_ptr_.size() != rows_ + 1 || col_idx_.size() != values_.size() ||
      row_ptr_.back() != values_.size())
    throw std::invalid_argument("CsrMatrix: inconsistent structure");
  // Sorted-column invariant: at() relies on binary search within each row.
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i] + 1; k < row_ptr_[i + 1]; ++k)
      if (col_idx_[k - 1] >= col_idx_[k])
        throw std::invalid_argument("CsrMatrix: column indices not strictly sorted within row");
  for (const std::size_t j : col_idx_)
    if (j >= cols_) throw std::invalid_argument("CsrMatrix: column index out of range");
}

Vector CsrMatrix::multiply(const Vector& x) const { return multiply(current_pool(), x); }

Vector CsrMatrix::multiply(ThreadPool& pool, const Vector& x) const {
  Vector y;
  multiply(pool, x, y);
  return y;
}

void CsrMatrix::multiply(const Vector& x, Vector& y) const {
  multiply(current_pool(), x, y);
}

void CsrMatrix::multiply(ThreadPool& pool, const Vector& x, Vector& y) const {
  if (x.size() != cols_) throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  assert(&x != &y && "CsrMatrix::multiply: y must not alias x");
  static thread_local obs::CounterHandle spmv_calls{"numeric.spmv.calls"};
  spmv_calls.add();
  y.assign(rows_, 0.0);
  // Grain estimate by nonzeros, not rows: the per-row work is the row's
  // nonzero count, and the row partition is what fans out.
  parallel_for(pool, 0, rows_,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   double acc = 0.0;
                   for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
                     acc += values_[k] * x[col_idx_[k]];
                   y[i] = acc;
                 }
               },
               grain::Work::elements(nonzeros(), grain::Cost::kSpmv));
}

Vector CsrMatrix::diagonal() const {
  Vector d(std::min(rows_, cols_), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = at(i, i);
  return d;
}

double CsrMatrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("CsrMatrix::at");
  const auto first = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto last = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(first, last, j);
  if (it == last || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

double CsrMatrix::asymmetry() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      worst = std::max(worst, std::fabs(values_[k] - at(j, i)));
    }
  return worst;
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) m(i, col_idx_[k]) += values_[k];
  return m;
}

CsrMatrix add_scaled(const CsrMatrix& a, double alpha, const CsrMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("add_scaled: shape mismatch");
  std::vector<std::size_t> row_ptr(a.rows() + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(a.nonzeros() + b.nonzeros());
  values.reserve(a.nonzeros() + b.nonzeros());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    std::size_t ka = a.row_ptr()[i];
    std::size_t kb = b.row_ptr()[i];
    const std::size_t ea = a.row_ptr()[i + 1];
    const std::size_t eb = b.row_ptr()[i + 1];
    while (ka < ea || kb < eb) {
      const std::size_t ja = ka < ea ? a.col_idx()[ka] : static_cast<std::size_t>(-1);
      const std::size_t jb = kb < eb ? b.col_idx()[kb] : static_cast<std::size_t>(-1);
      if (ja < jb) {
        col_idx.push_back(ja);
        values.push_back(a.values()[ka++]);
      } else if (jb < ja) {
        col_idx.push_back(jb);
        values.push_back(alpha * b.values()[kb++]);
      } else {
        col_idx.push_back(ja);
        values.push_back(a.values()[ka++] + alpha * b.values()[kb++]);
      }
    }
    row_ptr[i + 1] = values.size();
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

namespace {

Vector jacobi_preconditioner(const CsrMatrix& a) {
  Vector inv_d = a.diagonal();
  for (double& v : inv_d) v = (v != 0.0) ? 1.0 / v : 1.0;
  return inv_d;
}

void hadamard(ThreadPool& pool, const Vector& a, const Vector& b, Vector& out) {
  parallel_for(pool, 0, a.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = a[i] * b[i];
  });
}

void hadamard(const Vector& a, const Vector& b, Vector& out) {
  hadamard(current_pool(), a, b, out);
}

IterativeResult cg_impl(ThreadPool& pool, const CsrMatrix& a, const Vector& b,
                        const IterativeOptions& opts, const Vector* x0) {
  if (a.rows() != a.cols() || b.size() != a.rows())
    throw std::invalid_argument("conjugate_gradient: shape mismatch");
  if (x0 && x0->size() != b.size())
    throw std::invalid_argument("conjugate_gradient: warm-start size mismatch");
  const std::size_t n = b.size();
  IterativeResult res;
  const double bnorm = parallel_norm2(pool, b);
  if (bnorm == 0.0) {
    res.x.assign(n, 0.0);
    res.converged = true;
    return res;
  }
  res.x = x0 ? *x0 : Vector(n, 0.0);
  const Vector inv_d = jacobi_preconditioner(a);
  Vector r(n);
  if (x0) {
    a.multiply(pool, res.x, r);  // r = b - A x0
    parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) r[i] = b[i] - r[i];
    });
    res.residual = parallel_norm2(pool, r) / bnorm;
    if (res.residual < opts.tolerance) {
      res.converged = true;  // warm start already good enough
      return res;
    }
  } else {
    r = b;  // r = b - A*0
  }
  // Optional Chebyshev acceleration (opts.chebyshev_degree >= 2): estimate
  // the Jacobi-operator spectrum once, fall back to plain Jacobi when the
  // estimate is unusable. Off by default — the Jacobi path below is
  // bit-identical to the historical unfused kernels, so goldens and counter
  // expectations hold.
  ChebyshevJacobi* cheby = nullptr;
  std::optional<ChebyshevJacobi> cheby_storage;
  if (opts.chebyshev_degree >= 2) {
    const SpectralBounds bounds = estimate_jacobi_spectrum(pool, a, inv_d);
    if (bounds.usable()) {
      cheby_storage.emplace(a, inv_d, bounds, opts.chebyshev_degree);
      cheby = &*cheby_storage;
      static thread_local obs::CounterHandle cg_cheby{"numeric.cg.cheby_solves"};
      cg_cheby.add();
    }
  }
  // jac = D^-1 r: the Jacobi path uses it as the preconditioned residual z
  // directly; the Chebyshev path feeds it to the polynomial. The fused CG
  // update below keeps it current for free.
  Vector jac(n);
  Vector z;
  double rz;
  if (cheby != nullptr) {
    hadamard(pool, inv_d, r, jac);
    cheby->apply(pool, r, jac, z);
    rz = parallel_dot(pool, r, z);
  } else {
    z.resize(n);
    rz = fused_hadamard_dot(pool, inv_d, r, z);
  }
  Vector p = z;
  Vector ap(n);
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    a.multiply(pool, p, ap);
    const double pap = parallel_dot(pool, p, ap);
    if (pap <= 0.0) break;  // not SPD (or breakdown)
    const double alpha = rz / pap;
    // One fused sweep replaces two axpys, a hadamard and two dots: updates
    // x and r, refreshes D^-1 r, and returns <r,r> and <r, D^-1 r> through
    // the same fixed-chunk in-order reduction the separate kernels used —
    // iterates and residuals are bit-identical to the unfused loop.
    Vector& zj = cheby != nullptr ? jac : z;
    const CgFused f = cg_fused_update(pool, alpha, p, ap, inv_d, res.x, r, zj);
    res.iterations = it + 1;
    res.residual = std::sqrt(f.rr) / bnorm;
    if (res.residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    double rz_new = f.rz;
    if (cheby != nullptr) {
      cheby->apply(pool, r, jac, z);
      rz_new = parallel_dot(pool, r, z);
    }
    const double beta = rz_new / rz;
    rz = rz_new;
    parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) p[i] = z[i] + beta * p[i];
    });
  }
  return res;
}

}  // namespace

IterativeResult conjugate_gradient(const CsrMatrix& a, const Vector& b,
                                   const IterativeOptions& opts, const Vector* x0) {
  return conjugate_gradient(current_pool(), a, b, opts, x0);
}

IterativeResult conjugate_gradient(ThreadPool& pool, const CsrMatrix& a, const Vector& b,
                                   const IterativeOptions& opts, const Vector* x0) {
  static thread_local obs::CounterHandle cg_solves{"numeric.cg.solves"};
  static thread_local obs::CounterHandle cg_iters{"numeric.cg.iterations"};
  static thread_local obs::CounterHandle cg_warm{"numeric.cg.warmstart_hits"};
  obs::ScopedTimer span("numeric.cg");
  const IterativeResult res = cg_impl(pool, a, b, opts, x0);
  cg_solves.add();
  cg_iters.add(res.iterations);
  // A warm start good enough that CG never iterated (covers the trivial
  // zero-RHS solve too — the warm start is exact there).
  if (x0 != nullptr && res.converged && res.iterations == 0) cg_warm.add();
  if (obs::enabled()) {
    static thread_local obs::GaugeHandle cg_residual{"numeric.cg.last_residual"};
    static thread_local obs::GaugeHandle cg_last_iters{"numeric.cg.last_iterations"};
    cg_residual.set(res.residual);
    cg_last_iters.set(static_cast<double>(res.iterations));
  }
  return res;
}

IterativeResult bicgstab(const CsrMatrix& a, const Vector& b, const IterativeOptions& opts) {
  if (a.rows() != a.cols() || b.size() != a.rows())
    throw std::invalid_argument("bicgstab: shape mismatch");
  const std::size_t n = b.size();
  IterativeResult res;
  res.x.assign(n, 0.0);
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }
  const Vector inv_d = jacobi_preconditioner(a);
  Vector r = b;
  Vector r0 = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  Vector v(n, 0.0), p(n, 0.0), phat(n), shat(n);
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    const double rho_new = dot(r0, r);
    if (rho_new == 0.0) break;
    if (it == 0) {
      p = r;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    rho = rho_new;
    hadamard(inv_d, p, phat);
    v = a.multiply(phat);
    const double r0v = dot(r0, v);
    if (r0v == 0.0) break;
    alpha = rho / r0v;
    Vector s = r;
    axpy(-alpha, v, s);
    if (norm2(s) / bnorm < opts.tolerance) {
      axpy(alpha, phat, res.x);
      res.iterations = it + 1;
      res.residual = norm2(s) / bnorm;
      res.converged = true;
      return res;
    }
    hadamard(inv_d, s, shat);
    const Vector t = a.multiply(shat);
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    omega = dot(t, s) / tt;
    axpy(alpha, phat, res.x);
    axpy(omega, shat, res.x);
    r = s;
    axpy(-omega, t, r);
    res.iterations = it + 1;
    res.residual = norm2(r) / bnorm;
    if (res.residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) break;
  }
  return res;
}

}  // namespace aeropack::numeric
