// Dense row-major matrix and vector operations.
//
// This is the linear-algebra foundation shared by the FEM structural solver,
// the finite-volume thermal solver and the two-phase network models. It is
// deliberately small: double precision only, row-major storage, exceptions on
// dimension mismatch.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace aeropack::numeric {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool square() const { return rows_ == cols_ && rows_ > 0; }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  /// Checked element access; throws std::out_of_range.
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Frobenius norm.
  double norm() const;
  Matrix transposed() const;
  /// Max |a_ij - a_ji| over all pairs; 0 for an exactly symmetric matrix.
  double asymmetry() const;
  /// Force exact symmetry: A <- (A + A^T)/2. Requires square().
  void symmetrize();

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double s);
Matrix operator*(double s, Matrix rhs);
Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& a, const Vector& x);
std::ostream& operator<<(std::ostream& os, const Matrix& m);

// --- Vector helpers -------------------------------------------------------

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(double s, Vector v);

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& v);
double norm_inf(const Vector& v);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
/// Element-wise maximum value.
double max_element(const Vector& v);
/// Element-wise minimum value.
double min_element(const Vector& v);
/// Linearly spaced values from a to b inclusive (n >= 2).
Vector linspace(double a, double b, std::size_t n);

}  // namespace aeropack::numeric
