// Least-squares fitting: polynomial and general linear models via normal
// equations (the data sizes here are instrument-scale, conditioning is
// handled by centering). Used for calibration-style post-processing — the
// ASTM D5470 line fit is the degree-1 special case.
#pragma once

#include <cstddef>

#include "numeric/dense.hpp"

namespace aeropack::numeric {

struct PolyFit {
  Vector coefficients;  ///< c[0] + c[1] (x - x0) + c[2] (x - x0)^2 + ...
  double x_offset = 0.0;  ///< centering offset x0 (mean of the data)
  double rms_residual = 0.0;
  double r_squared = 0.0;

  /// Evaluate the fitted polynomial at x.
  double operator()(double x) const;
  /// Derivative of the fit at x.
  double derivative(double x) const;
};

/// Fit a degree-`degree` polynomial to (x, y) by least squares. Data are
/// centered about mean(x) before solving for conditioning. Requires
/// x.size() == y.size() > degree.
PolyFit polyfit(const Vector& x, const Vector& y, std::size_t degree);

/// Straight-line helper returning (slope, intercept) in the *uncentered*
/// frame: y = slope x + intercept.
void linear_fit(const Vector& x, const Vector& y, double& slope, double& intercept);

}  // namespace aeropack::numeric
