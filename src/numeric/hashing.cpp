#include "numeric/hashing.hpp"

#include <cstring>

#include "numeric/sparse.hpp"

namespace aeropack::numeric {

StructuralHasher& StructuralHasher::add(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return add(bits);
}

StructuralHasher& StructuralHasher::add(std::string_view s) {
  add(static_cast<std::uint64_t>(s.size()));
  for (const char c : s) byte(static_cast<unsigned char>(c));
  return *this;
}

StructuralHasher& StructuralHasher::add(const std::vector<double>& v) {
  add(static_cast<std::uint64_t>(v.size()));
  for (const double d : v) add(d);
  return *this;
}

StructuralHasher& StructuralHasher::add(const std::vector<std::size_t>& v) {
  add(static_cast<std::uint64_t>(v.size()));
  for (const std::size_t s : v) add(static_cast<std::uint64_t>(s));
  return *this;
}

std::uint64_t hash_csr(const CsrMatrix& a) {
  StructuralHasher h;
  h.add(static_cast<std::uint64_t>(a.rows())).add(static_cast<std::uint64_t>(a.cols()));
  h.add(a.row_ptr()).add(a.col_idx()).add(a.values());
  return h.value();
}

}  // namespace aeropack::numeric
