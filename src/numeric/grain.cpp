#include "numeric/grain.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace aeropack::numeric::grain {

bool disabled() {
  static const bool off = [] {
    const char* env = std::getenv("AEROPACK_GRAIN");
    return env != nullptr &&
           (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0);
  }();
  return off;
}

std::size_t hardware_parallelism() {
  static const std::size_t hw = [] {
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? static_cast<std::size_t>(n) : std::size_t{1};
  }();
  return hw;
}

namespace {
std::atomic<int> g_force_fan_out{0};
}  // namespace

bool fan_out_forced() {
  return g_force_fan_out.load(std::memory_order_relaxed) != 0;
}

ScopedForceFanOut::ScopedForceFanOut() {
  g_force_fan_out.fetch_add(1, std::memory_order_relaxed);
}

ScopedForceFanOut::~ScopedForceFanOut() {
  g_force_fan_out.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace aeropack::numeric::grain
