// Symmetric and generalized symmetric-definite eigensolvers.
//
// Modal analysis in the FEM module solves K phi = lambda M phi with K
// symmetric positive semi-definite and M symmetric positive definite.
// We reduce to a standard symmetric problem via the Cholesky factor of M
// and diagonalize with the cyclic Jacobi method (robust, adequate for the
// dense reduced problems this toolkit produces).
#pragma once

#include <cstddef>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::numeric {

struct EigenResult {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< column j pairs with eigenvalues[j]
  std::size_t sweeps = 0;
};

/// Cyclic Jacobi diagonalization of a symmetric matrix.
/// Throws std::invalid_argument if `a` is not square or not symmetric to tol.
EigenResult eigen_symmetric(const Matrix& a, double symmetry_tol = 1e-8);

/// Generalized problem K x = lambda M x, K symmetric, M symmetric positive
/// definite. Eigenvectors are M-orthonormal: X^T M X = I.
/// Throws std::domain_error if M is indefinite or singular.
EigenResult eigen_generalized(const Matrix& k, const Matrix& m);

struct SparseEigenOptions {
  /// Spectral shift sigma for the shift-invert operator (K - sigma*M)^-1 M.
  /// 0 targets the lowest modes; if K - sigma*M is not positive definite the
  /// solver retries with negative shifts (K + |sigma|M is SPD for PSD K).
  double shift = 0.0;
  /// Subspace width is min(n, max(2*n_modes, n_modes + subspace_extra)).
  std::size_t subspace_extra = 8;
  std::size_t max_iterations = 100;
  /// Relative eigenvalue drift below which the iteration stops.
  double tolerance = 1e-12;
  /// Envelope budget for the skyline factorization of K - sigma*M; when
  /// exceeded the solver falls back to conjugate gradients.
  std::size_t max_envelope = std::size_t{1} << 28;
};

/// Lowest `n_modes` eigenpairs of K x = lambda M x for sparse symmetric K
/// (positive semi-definite) and M (positive definite), via shift-invert
/// subspace iteration with Rayleigh-Ritz projection. Eigenvectors are
/// M-orthonormal. The inner factorization is a serial skyline Cholesky (CG
/// fallback), the SpMV/dot kernels run on the deterministic parallel layer,
/// so results are bit-identical across thread counts.
/// Throws std::invalid_argument on shape errors, std::domain_error if no
/// trial shift yields a usable operator.
EigenResult eigen_generalized_sparse(const CsrMatrix& k, const CsrMatrix& m,
                                     std::size_t n_modes,
                                     const SparseEigenOptions& opts = {});
/// Same, with every parallel kernel pinned to `pool` (the pool-less overload
/// runs on the calling thread's current pool).
EigenResult eigen_generalized_sparse(ThreadPool& pool, const CsrMatrix& k,
                                     const CsrMatrix& m, std::size_t n_modes,
                                     const SparseEigenOptions& opts = {});

/// Natural frequencies [Hz] from generalized stiffness/mass eigenvalues.
/// Eigenvalues within a small tolerance of zero (rigid-body-mode noise)
/// clamp to 0; genuinely negative eigenvalues indicate an indefinite pencil
/// and throw std::domain_error instead of being silently flattened.
Vector natural_frequencies_hz(const Vector& eigenvalues);
Vector natural_frequencies_hz(const EigenResult& modes);

}  // namespace aeropack::numeric
