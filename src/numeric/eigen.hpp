// Symmetric and generalized symmetric-definite eigensolvers.
//
// Modal analysis in the FEM module solves K phi = lambda M phi with K
// symmetric positive semi-definite and M symmetric positive definite.
// We reduce to a standard symmetric problem via the Cholesky factor of M
// and diagonalize with the cyclic Jacobi method (robust, adequate for the
// dense reduced problems this toolkit produces).
#pragma once

#include <cstddef>
#include <memory>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::numeric {

class SkylineCholesky;

struct EigenResult {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< column j pairs with eigenvalues[j]
  std::size_t sweeps = 0;
};

/// Cyclic Jacobi diagonalization of a symmetric matrix.
/// Throws std::invalid_argument if `a` is not square or not symmetric to tol.
EigenResult eigen_symmetric(const Matrix& a, double symmetry_tol = 1e-8);

/// Generalized problem K x = lambda M x, K symmetric, M symmetric positive
/// definite. Eigenvectors are M-orthonormal: X^T M X = I.
/// Throws std::domain_error if M is indefinite or singular.
EigenResult eigen_generalized(const Matrix& k, const Matrix& m);

struct SparseEigenOptions {
  /// Spectral shift sigma for the shift-invert operator (K - sigma*M)^-1 M.
  /// 0 targets the lowest modes; if K - sigma*M is not positive definite the
  /// solver retries with negative shifts (K + |sigma|M is SPD for PSD K).
  double shift = 0.0;
  /// Subspace width is min(n, max(2*n_modes, n_modes + subspace_extra)).
  std::size_t subspace_extra = 8;
  std::size_t max_iterations = 100;
  /// Relative eigenvalue drift below which the iteration stops.
  double tolerance = 1e-12;
  /// Envelope budget for the skyline factorization of K - sigma*M; when
  /// exceeded the solver falls back to conjugate gradients.
  std::size_t max_envelope = std::size_t{1} << 28;
};

/// A factorized shift-invert operator (K - sigma*M)^-1 — the expensive half
/// of a sparse modal solve, split out so a scenario cache can build it once
/// and share it across solves. solve() is const, serial and therefore
/// bit-deterministic, so concurrent solves on a shared factorization are
/// race-free and reproduce the owning solve's bits exactly.
///
/// Caching contract: the factorization depends on K, M, `sigma` and the
/// envelope budget. When the shift ladder retried (the stored `sigma`
/// differs from the requested shift) the operator mixes M into the factored
/// matrix even though the request looked K-only — callers must only cache a
/// factorization under a key that covers every matrix the resolved shift
/// mixes in (see fem::factorize_modal, which caches only ladder-free
/// sigma == 0 factorizations keyed by K alone).
struct ShiftedFactorization {
  std::shared_ptr<const SkylineCholesky> factor;  ///< null => CG fallback
  CsrMatrix matrix;                               ///< K - sigma*M (kept for CG)
  double sigma = 0.0;

  /// y = (K - sigma*M)^-1 b via the skyline factor, or CG when the envelope
  /// was over budget. Throws std::domain_error if the CG fallback stalls.
  Vector solve(const Vector& b) const;
  /// Approximate resident size, for cost-aware cache eviction.
  std::size_t cost_bytes() const;
};

/// Build the shift-invert operator for `eigen_generalized_sparse`: factor
/// K - sigma*M, walking a ladder of increasingly negative shifts when the
/// requested one is indefinite (K + |sigma|*M is SPD for PSD K and PD M, so
/// the ladder terminates for well-posed pencils). Falls back to an
/// unfactored CG operator when the envelope exceeds opts.max_envelope.
/// Throws std::domain_error when no trial shift yields a usable operator.
ShiftedFactorization factorize_shift_invert(const CsrMatrix& k, const CsrMatrix& m,
                                            const SparseEigenOptions& opts = {});

/// Lowest `n_modes` eigenpairs of K x = lambda M x for sparse symmetric K
/// (positive semi-definite) and M (positive definite), via shift-invert
/// subspace iteration with Rayleigh-Ritz projection. Eigenvectors are
/// M-orthonormal. The inner factorization is a serial skyline Cholesky (CG
/// fallback), the SpMV/dot kernels run on the deterministic parallel layer,
/// so results are bit-identical across thread counts.
/// Throws std::invalid_argument on shape errors, std::domain_error if no
/// trial shift yields a usable operator.
EigenResult eigen_generalized_sparse(const CsrMatrix& k, const CsrMatrix& m,
                                     std::size_t n_modes,
                                     const SparseEigenOptions& opts = {});
/// Same iteration on a pre-built (possibly cache-shared) factorization of
/// exactly this (K, M, opts) combination. Bit-identical to the factorizing
/// overload; performs no factorization work, so "numeric.skyline.*" counters
/// stay untouched on a cache hit.
/// Throws std::invalid_argument if `op` does not match the pencil's size.
EigenResult eigen_generalized_sparse(const CsrMatrix& k, const CsrMatrix& m,
                                     std::size_t n_modes, const SparseEigenOptions& opts,
                                     const ShiftedFactorization& op);
/// Same, with every parallel kernel pinned to `pool` (the pool-less overload
/// runs on the calling thread's current pool).
EigenResult eigen_generalized_sparse(ThreadPool& pool, const CsrMatrix& k,
                                     const CsrMatrix& m, std::size_t n_modes,
                                     const SparseEigenOptions& opts = {});

/// Natural frequencies [Hz] from generalized stiffness/mass eigenvalues.
/// Eigenvalues within a small tolerance of zero (rigid-body-mode noise)
/// clamp to 0; genuinely negative eigenvalues indicate an indefinite pencil
/// and throw std::domain_error instead of being silently flattened.
Vector natural_frequencies_hz(const Vector& eigenvalues);
Vector natural_frequencies_hz(const EigenResult& modes);

}  // namespace aeropack::numeric
