// Symmetric and generalized symmetric-definite eigensolvers.
//
// Modal analysis in the FEM module solves K phi = lambda M phi with K
// symmetric positive semi-definite and M symmetric positive definite.
// We reduce to a standard symmetric problem via the Cholesky factor of M
// and diagonalize with the cyclic Jacobi method (robust, adequate for the
// dense reduced problems this toolkit produces).
#pragma once

#include <cstddef>

#include "numeric/dense.hpp"

namespace aeropack::numeric {

struct EigenResult {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< column j pairs with eigenvalues[j]
  std::size_t sweeps = 0;
};

/// Cyclic Jacobi diagonalization of a symmetric matrix.
/// Throws std::invalid_argument if `a` is not square or not symmetric to tol.
EigenResult eigen_symmetric(const Matrix& a, double symmetry_tol = 1e-8);

/// Generalized problem K x = lambda M x, K symmetric, M symmetric positive
/// definite. Eigenvectors are M-orthonormal: X^T M X = I.
EigenResult eigen_generalized(const Matrix& k, const Matrix& m);

/// Natural frequencies [Hz] from a generalized stiffness/mass eigensolution.
/// Negative eigenvalues (numerical noise on rigid-body modes) clamp to 0.
Vector natural_frequencies_hz(const EigenResult& modes);

}  // namespace aeropack::numeric
