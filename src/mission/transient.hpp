// Mission transient campaigns: adaptive implicit-Euler marches of an
// FvModel (or ThermalNetwork) through a mission::Profile environment driver
// (DESIGN.md "Mission profiles").
//
// The march is PI-controlled with a step-doubling error estimate: every
// attempted step is computed once at dt and again as two half steps on the
// same shared steady assembly; the max-norm difference of the two end
// fields estimates the local truncation error, the (more accurate) two-half
// solution is the one accepted, and a PI controller picks the next step
// size. Steps are clamped so they never cross a phase boundary of the
// profile — drivers may be discontinuous there (eclipse square waves) and
// stepping across a discontinuity would smear it.
//
// Determinism contract: the controller state is pure double arithmetic and
// every FV kernel underneath uses deterministic chunked reductions, so the
// accepted step sequence — times, fields, counters — is bitwise identical
// at 1, 2 and 8 threads (gated by tests/mission/test_determinism.cpp, plain
// and under TSan).
#pragma once

#include <cstddef>
#include <memory>

#include "mission/profile.hpp"
#include "numeric/dense.hpp"
#include "thermal/fv.hpp"
#include "thermal/network.hpp"

namespace aeropack {
class ExecutionContext;
}

namespace aeropack::mission {

/// PI step-size controller knobs. Defaults suit the coarse qualification
/// models (SEB box, Fig. 2 board); tighten `tolerance` for fine grids.
struct AdaptiveOptions {
  double tolerance = 0.05;  ///< step-doubling error target, max-norm [K]
  double dt_initial = 1.0;  ///< first attempted step [s]
  double dt_min = 1e-3;     ///< smallest controller step [s]
  double dt_max = 60.0;     ///< largest controller step [s]
  double safety = 0.9;      ///< classic controller safety factor
  double shrink_limit = 0.2;  ///< max per-step shrink factor
  double grow_limit = 4.0;    ///< max per-step growth factor
  /// PI gains for first-order implicit Euler: factor =
  /// safety * (tol/err)^k_i * (err_prev/err)^k_p, clamped to the limits.
  double k_i = 0.35;
  double k_p = 0.2;
  /// Hard cap on attempted steps (accepted + rejected); exceeding it throws
  /// std::runtime_error — the march is diverging or dt_min is too small.
  std::size_t max_steps = 200000;
};

/// One adaptive mission march. Traces are per *accepted* step (index 0 is
/// the initial state); the full per-cell field is kept only for the final
/// time — mission horizons are long and campaigns run by the hundred, so
/// storing every field would defeat the service cache's memory budget.
struct MissionSolution {
  numeric::Vector times;    ///< accepted step end times, [0] = 0
  numeric::Vector t_max;    ///< field max per accepted step [K]
  numeric::Vector t_min;    ///< field min per accepted step [K]
  numeric::Vector t_mean;   ///< volume-average per accepted step [K]
  numeric::Vector final_field;  ///< per-cell field at the horizon [K]
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  std::size_t phase_transitions = 0;  ///< accepted steps landing on a phase boundary
  std::size_t linear_iterations = 0;  ///< total CG iterations (all attempts)
  std::size_t structure_assemblies = 0;  ///< 0 when a shared assembly was supplied
};

/// Build the FV drive of a profile: Convection and NaturalConvection
/// boundaries follow t_ambient, ConvectionRadiation faces follow t_sink,
/// FixedTemperature boundaries follow t_ambient, fixed film coefficients
/// scale by h_scale and volumetric sources by power_scale. Adiabatic and
/// HeatFlux faces are untouched. The drive copies the profile (profiles are
/// small); it stays valid after the profile goes out of scope.
thermal::FvDrive drive_for(const Profile& profile);

/// Network counterpart: every boundary node follows t_ambient and loads
/// scale by power_scale.
thermal::NetworkDrive drive_for_network(const Profile& profile);

/// Adaptively march `model` from a uniform initial temperature through the
/// whole profile ([0, profile.total_duration()]). `assembly` may be a
/// cache-shared *steady* assembly of the model (null assembles once) — the
/// same artifact class steady scenario graphs key in core::ArtifactCache,
/// which is what lets a qualification campaign share one assembly across
/// every mission point. Emits obs counters mission.steps,
/// mission.step_rejections, mission.phase_transitions,
/// mission.cg_iterations and the wall-clock counter
/// mission.wallclock.elapsed_us (never gated — see tools/check_report.py),
/// plus mission.sim_seconds / mission.wall_seconds gauges.
MissionSolution run_fv_mission(const thermal::FvModel& model, const Profile& profile,
                               double t_initial, const AdaptiveOptions& adaptive = {},
                               const thermal::FvOptions& fv_opts = {},
                               std::shared_ptr<const thermal::FvAssembly> assembly = nullptr);

/// Same march pinned to an ExecutionContext: kernels on the context's pool,
/// telemetry in its registry, CG Chebyshev degree inherited from the
/// context config. Bit-identical to the unpinned overload at any thread
/// count.
MissionSolution run_fv_mission(ExecutionContext& ctx, const thermal::FvModel& model,
                               const Profile& profile, double t_initial,
                               const AdaptiveOptions& adaptive = {},
                               const thermal::FvOptions& fv_opts = {},
                               std::shared_ptr<const thermal::FvAssembly> assembly = nullptr);

}  // namespace aeropack::mission
