// Mission transient campaigns: adaptive implicit-Euler marches of an
// FvModel (or ThermalNetwork) through a mission::Profile environment driver
// (DESIGN.md "Mission profiles").
//
// The march is PI-controlled with a step-doubling error estimate: every
// attempted step is computed once at dt and again as two half steps on the
// same shared steady assembly; the max-norm difference of the two end
// fields estimates the local truncation error, the (more accurate) two-half
// solution is the one accepted, and a PI controller picks the next step
// size. Steps are clamped so they never cross a phase boundary of the
// profile — drivers may be discontinuous there (eclipse square waves) and
// stepping across a discontinuity would smear it.
//
// Determinism contract: the controller state is pure double arithmetic and
// every FV kernel underneath uses deterministic chunked reductions, so the
// accepted step sequence — times, fields, counters — is bitwise identical
// at 1, 2 and 8 threads (gated by tests/mission/test_determinism.cpp, plain
// and under TSan).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/transient_engine.hpp"
#include "mission/profile.hpp"
#include "numeric/dense.hpp"
#include "rom/rom.hpp"
#include "rom/transient.hpp"
#include "thermal/fv.hpp"
#include "thermal/network.hpp"

namespace aeropack {
class ExecutionContext;
}

namespace aeropack::mission {

/// PI step-size controller knobs — the engine's options verbatim
/// (core::AdaptiveOptions documents every knob). Defaults suit the coarse
/// qualification models (SEB box, Fig. 2 board); tighten `tolerance` for
/// fine grids. One options struct serves every fidelity: the tolerance is
/// in kelvin at FV, network and ROM fidelity alike.
using AdaptiveOptions = core::AdaptiveOptions;

/// One adaptive mission march. Traces are per *accepted* step (index 0 is
/// the initial state); the full per-cell field is kept only for the final
/// time — mission horizons are long and campaigns run by the hundred, so
/// storing every field would defeat the service cache's memory budget.
struct MissionSolution {
  numeric::Vector times;    ///< accepted step end times, [0] = 0
  numeric::Vector t_max;    ///< field max per accepted step [K]
  numeric::Vector t_min;    ///< field min per accepted step [K]
  numeric::Vector t_mean;   ///< volume-average per accepted step [K]
  numeric::Vector final_field;  ///< per-cell field at the horizon [K]
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  std::size_t phase_transitions = 0;  ///< accepted steps landing on a phase boundary
  std::size_t linear_iterations = 0;  ///< total CG iterations (all attempts)
  std::size_t structure_assemblies = 0;  ///< 0 when a shared assembly was supplied
};

/// Build the FV drive of a profile: Convection and NaturalConvection
/// boundaries follow t_ambient, ConvectionRadiation faces follow t_sink,
/// FixedTemperature boundaries follow t_ambient, fixed film coefficients
/// scale by h_scale and volumetric sources by power_scale. Adiabatic and
/// HeatFlux faces are untouched. The drive copies the profile (profiles are
/// small); it stays valid after the profile goes out of scope.
thermal::FvDrive drive_for(const Profile& profile);

/// Network counterpart: every boundary node follows t_ambient and loads
/// scale by power_scale.
thermal::NetworkDrive drive_for_network(const Profile& profile);

/// Reduced-order counterpart: every port sink temperature follows
/// t_ambient and map powers scale by power_scale from `base_inputs` (whose
/// sink entries are overwritten — only its power levels matter). Port film
/// coefficients are baked into the projected operator at build time, so a
/// profile that scales films (h_scale != 1 anywhere) cannot be represented
/// at ROM fidelity and is rejected with std::invalid_argument — use an
/// FV-fidelity mission for those.
rom::RomDrive drive_for_rom(const Profile& profile, rom::RomInputs base_inputs);

/// Adaptively march `model` from a uniform initial temperature through the
/// whole profile ([0, profile.total_duration()]). `assembly` may be a
/// cache-shared *steady* assembly of the model (null assembles once) — the
/// same artifact class steady scenario graphs key in core::ArtifactCache,
/// which is what lets a qualification campaign share one assembly across
/// every mission point. Emits obs counters mission.steps,
/// mission.step_rejections, mission.phase_transitions,
/// mission.cg_iterations and the wall-clock counter
/// mission.wallclock.elapsed_us (never gated — see tools/check_report.py),
/// plus mission.sim_seconds / mission.wall_seconds gauges.
MissionSolution run_fv_mission(const thermal::FvModel& model, const Profile& profile,
                               double t_initial, const AdaptiveOptions& adaptive = {},
                               const thermal::FvOptions& fv_opts = {},
                               std::shared_ptr<const thermal::FvAssembly> assembly = nullptr);

/// Same march pinned to an ExecutionContext: kernels on the context's pool,
/// telemetry in its registry, CG Chebyshev degree inherited from the
/// context config. Bit-identical to the unpinned overload at any thread
/// count.
MissionSolution run_fv_mission(ExecutionContext& ctx, const thermal::FvModel& model,
                               const Profile& profile, double t_initial,
                               const AdaptiveOptions& adaptive = {},
                               const thermal::FvOptions& fv_opts = {},
                               std::shared_ptr<const thermal::FvAssembly> assembly = nullptr);

/// Same adaptive march at reduced-order fidelity: the controller, the
/// phase-boundary clamping and the trace layout are identical to
/// run_fv_mission — only the stepper underneath changes
/// (rom::RomTransientStepper on the cached projected operator, zero
/// reprojection per step). Traces and the final field are reconstructed to
/// the full per-cell field so tolerances and trace errors are directly
/// comparable against FV missions; `grid` (the source model's grid) enables
/// the volume-weighted t_mean — null falls back to the plain cell average.
/// In MissionSolution, `linear_iterations` counts reduced dense solves and
/// `structure_assemblies` is always 0. Emits obs counters
/// mission.rom_steps, mission.rom_step_rejections and
/// mission.phase_transitions.
MissionSolution run_rom_mission(const rom::RomModel& model, const Profile& profile,
                                double t_initial, const rom::RomInputs& base_inputs,
                                const AdaptiveOptions& adaptive = {},
                                const thermal::FvGrid* grid = nullptr);

/// Shared-ownership overload for cache-held models (rom::get_or_build_rom):
/// keeps the model alive for the duration of the march.
MissionSolution run_rom_mission(std::shared_ptr<const rom::RomModel> model,
                                const Profile& profile, double t_initial,
                                const rom::RomInputs& base_inputs,
                                const AdaptiveOptions& adaptive = {},
                                const thermal::FvGrid* grid = nullptr);

/// One adaptive lumped-network march. Networks are small, so the full node
/// vector is kept per accepted step (index 0 is the initial state with
/// boundary nodes resolved at t = 0).
struct NetworkMissionSolution {
  numeric::Vector times;  ///< accepted step end times, [0] = 0
  std::vector<numeric::Vector> node_temperatures;  ///< all nodes, per accepted step [K]
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  std::size_t phase_transitions = 0;  ///< accepted steps landing on a phase boundary
  std::size_t implicit_solves = 0;  ///< total Picard passes (all attempts)
};

/// Adaptive mission march of a ThermalNetwork through `profile` via
/// drive_for_network and the same engine/controller as run_fv_mission.
/// `initial_temperatures` holds every node (boundary entries are
/// re-resolved at t = 0 before recording). Emits obs counters
/// mission.network_steps, mission.network_step_rejections and
/// mission.phase_transitions.
NetworkMissionSolution run_network_mission(const thermal::ThermalNetwork& net,
                                           const Profile& profile,
                                           const numeric::Vector& initial_temperatures,
                                           const AdaptiveOptions& adaptive = {},
                                           const thermal::SteadyOptions& opts = {});

}  // namespace aeropack::mission
