// Mission-profile solver graphs for core::ScenarioService.
//
// Same layering as rom/service_graphs.hpp: mission sits above core, so core
// never links these — a service opts in through the extension point. Call
// register_mission_graphs() on a service to add:
//  - "mission_seb_do160":   DO-160 thermal-shock campaign (−45/+55 °C ramps
//    at 5 °C/min with dwells) of the canonical SEB conduction box
//    (rom::seb_box), adaptively stepped.
//  - "mission_seb_eclipse": CubeSat orbital eclipse square wave on the same
//    box — same structural hash, so a mixed campaign shares one cached
//    FvAssembly with the DO-160 scenarios and with steady solves of the box.
//  - "mission_network_flight": ARINC 600 takeoff/cruise/descent ambient
//    envelope on a two-node equipment/chassis lumped network, adaptively
//    stepped through the same engine as the FV graphs.
//  - "mission_rom_do160" / "mission_rom_eclipse": the same two campaigns at
//    reduced-order fidelity — the SEB box is reduced once through
//    rom::get_or_build_rom (the same cache key the rom steady graphs use)
//    and each mission point marches the reduced coordinates. Same output
//    keys as the FV graphs, so swapping fidelity is a one-word change of
//    `spec.graph`.
//
// Spec conventions (defaults in parentheses):
//  mission_seb_do160 / mission_rom_do160
//   params:     tolerance (0.05 K), dt_max (60 s), dwell_s (1800),
//               ramp_rate (5 K/min), t_initial (293.15); the rom graph also
//               takes rank (0 = builder's POD energy choice)
//   loads:      pcb_components (40 W), psu (15 W)
//   boundaries: t_cold (228.15), t_hot (328.15)
//  mission_seb_eclipse / mission_rom_eclipse
//   params:     tolerance (0.05 K), dt_max (60 s), orbits (2),
//               period_s (600), eclipse_fraction (0.35),
//               eclipse_power_scale (0.6), t_initial (293.15); the rom
//               graph also takes rank
//   loads:      pcb_components (40 W), psu (15 W)
//   boundaries: t_sunlit (313.15), t_eclipse (213.15)
//  mission_network_flight
//   params:     time_scale (0.05), dt (5 s, scaled, initial step),
//               tolerance (0.05 K), dt_max (60 s, scaled), t_initial (293.15)
//   loads:      equipment (120 W)
//   boundaries: t_ground (328.15), t_cruise (243.15)
// Common outputs: "t_final_max/min/mean" [K] at the horizon, "t_peak_max"
// and "t_low_min" over the whole trace, "steps", "step_rejections",
// "phase_transitions", "sim_seconds" (the FV graphs add
// "linear_iterations"/"structure_assemblies", the rom graphs "rank"). The
// network graph reports "t_equipment"/"t_chassis" finals,
// "t_equipment_peak" and "implicit_solves" instead of field stats.
//
// Hashing rule (CONTRIBUTING.md): the profile enters each scenario through
// params/loads/boundaries — i.e. the spec's content_hash — while the cached
// FvAssembly is keyed purely on structural_hash, which no driver touches.
#pragma once

namespace aeropack::core {
class ScenarioService;
}

namespace aeropack::mission {

void register_mission_graphs(core::ScenarioService& service);

}  // namespace aeropack::mission
