#include "mission/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "numeric/hashing.hpp"

namespace aeropack::mission {

namespace {

constexpr std::string_view kMagic = "mission/1";

// Same wire conventions as core::ScenarioSpec: '%', '|' and '=' carry
// structure, so they (and control characters) are %XX-escaped in names, and
// doubles are written as C99 hexfloats so the parsed profile hashes to the
// same value as the original.
void append_escaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    if (c == '%' || c == '|' || c == '=' || c == ',' || c < 0x20) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size())
        throw std::invalid_argument("Profile::deserialize: truncated escape");
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi < 0 || lo < 0)
        throw std::invalid_argument("Profile::deserialize: bad escape digit");
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_double(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("Profile::deserialize: empty value");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size())
    throw std::invalid_argument("Profile::deserialize: unparsable value '" + s + "'");
  return v;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

double lerp(double a, double b, double frac) { return a + (b - a) * frac; }

}  // namespace

// --- Phase -----------------------------------------------------------------

Phase Phase::constant(std::string name, double duration, double t_ambient, double h_scale,
                      double power_scale) {
  Phase p;
  p.name = std::move(name);
  p.duration = duration;
  p.t_ambient_start = p.t_ambient_end = t_ambient;
  p.h_scale_start = p.h_scale_end = h_scale;
  p.power_scale_start = p.power_scale_end = power_scale;
  p.t_sink_start = p.t_sink_end = t_ambient;
  return p;
}

Phase Phase::ramp(std::string name, double duration, double t_from, double t_to, double h_scale,
                  double power_scale) {
  Phase p;
  p.name = std::move(name);
  p.duration = duration;
  p.t_ambient_start = t_from;
  p.t_ambient_end = t_to;
  p.h_scale_start = p.h_scale_end = h_scale;
  p.power_scale_start = p.power_scale_end = power_scale;
  p.t_sink_start = t_from;
  p.t_sink_end = t_to;
  return p;
}

// --- Profile ---------------------------------------------------------------

void Profile::add_phase(Phase phase) {
  if (!(phase.duration > 0.0) || !std::isfinite(phase.duration))
    throw std::invalid_argument("Profile::add_phase: duration must be positive and finite");
  for (double v : {phase.t_ambient_start, phase.t_ambient_end, phase.t_sink_start,
                   phase.t_sink_end}) {
    if (!std::isfinite(v) || v <= 0.0)
      throw std::invalid_argument(
          "Profile::add_phase: temperatures must be absolute (K), positive and finite");
  }
  for (double v : {phase.h_scale_start, phase.h_scale_end, phase.power_scale_start,
                   phase.power_scale_end}) {
    if (!std::isfinite(v) || v < 0.0)
      throw std::invalid_argument("Profile::add_phase: scales must be finite and >= 0");
  }
  starts_.push_back(total_duration());
  phases_.push_back(std::move(phase));
}

const Phase& Profile::phase(std::size_t i) const {
  if (i >= phases_.size()) throw std::out_of_range("Profile::phase: index out of range");
  return phases_[i];
}

double Profile::total_duration() const {
  return phases_.empty() ? 0.0 : starts_.back() + phases_.back().duration;
}

double Profile::phase_start(std::size_t i) const {
  if (i >= starts_.size()) throw std::out_of_range("Profile::phase_start: index out of range");
  return starts_[i];
}

std::size_t Profile::phase_index(double t) const {
  if (phases_.empty()) throw std::logic_error("Profile::phase_index: empty profile");
  // First phase whose start is >= t; the owning phase is the one before it,
  // so a boundary instant belongs to the closing phase ((start, end]).
  const auto it = std::lower_bound(starts_.begin(), starts_.end(), t);
  const std::size_t idx = static_cast<std::size_t>(it - starts_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, phases_.size() - 1);
}

double Profile::next_transition(double t) const {
  if (phases_.empty()) throw std::logic_error("Profile::next_transition: empty profile");
  const double total = total_duration();
  const double eps = 1e-12 * std::max(1.0, total);
  for (std::size_t i = 0; i + 1 < phases_.size(); ++i) {
    const double end = starts_[i + 1];
    if (end > t + eps) return end;
  }
  return total;
}

EnvironmentState Profile::environment(double t) const {
  if (phases_.empty()) throw std::logic_error("Profile::environment: empty profile");
  const std::size_t i = phase_index(t);
  const Phase& p = phases_[i];
  const double local = t - starts_[i];
  const double frac = std::clamp(local / p.duration, 0.0, 1.0);
  EnvironmentState env;
  env.t_ambient = lerp(p.t_ambient_start, p.t_ambient_end, frac);
  env.h_scale = lerp(p.h_scale_start, p.h_scale_end, frac);
  env.power_scale = lerp(p.power_scale_start, p.power_scale_end, frac);
  env.t_sink = lerp(p.t_sink_start, p.t_sink_end, frac);
  return env;
}

std::uint64_t Profile::content_hash() const {
  numeric::StructuralHasher h;
  h.add(std::string_view("mission.profile"));
  h.add(static_cast<std::uint64_t>(phases_.size()));
  for (const Phase& p : phases_) {
    h.add(std::string_view(p.name));
    h.add(p.duration);
    h.add(p.t_ambient_start).add(p.t_ambient_end);
    h.add(p.h_scale_start).add(p.h_scale_end);
    h.add(p.power_scale_start).add(p.power_scale_end);
    h.add(p.t_sink_start).add(p.t_sink_end);
  }
  return h.value();
}

std::string Profile::serialize() const {
  std::string out(kMagic);
  out += "|name=";
  append_escaped(out, name_);
  for (const Phase& p : phases_) {
    out += "|phase:";
    append_escaped(out, p.name);
    out += '=';
    const double fields[] = {p.duration,        p.t_ambient_start, p.t_ambient_end,
                             p.h_scale_start,   p.h_scale_end,     p.power_scale_start,
                             p.power_scale_end, p.t_sink_start,    p.t_sink_end};
    for (std::size_t i = 0; i < 9; ++i) {
      if (i > 0) out += ',';
      out += format_double(fields[i]);
    }
  }
  return out;
}

Profile Profile::deserialize(const std::string& text) {
  const auto fields = split(text, '|');
  if (fields.empty() || fields[0] != kMagic)
    throw std::invalid_argument("Profile::deserialize: bad magic (want 'mission/1')");
  Profile profile;
  bool saw_name = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string_view f = fields[i];
    const std::size_t eq = f.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("Profile::deserialize: field without '='");
    const std::string_view key = f.substr(0, eq);
    const std::string_view raw = f.substr(eq + 1);
    if (key == "name") {
      if (saw_name) throw std::invalid_argument("Profile::deserialize: duplicate name");
      profile.name_ = unescape(raw);
      saw_name = true;
    } else if (key.size() > 6 && key.substr(0, 6) == "phase:") {
      const auto values = split(raw, ',');
      if (values.size() != 9)
        throw std::invalid_argument("Profile::deserialize: phase needs exactly 9 values");
      Phase p;
      p.name = unescape(key.substr(6));
      double v[9];
      for (std::size_t n = 0; n < 9; ++n) v[n] = parse_double(unescape(values[n]));
      p.duration = v[0];
      p.t_ambient_start = v[1];
      p.t_ambient_end = v[2];
      p.h_scale_start = v[3];
      p.h_scale_end = v[4];
      p.power_scale_start = v[5];
      p.power_scale_end = v[6];
      p.t_sink_start = v[7];
      p.t_sink_end = v[8];
      profile.add_phase(std::move(p));
    } else {
      throw std::invalid_argument("Profile::deserialize: unknown field tag");
    }
  }
  if (!saw_name) throw std::invalid_argument("Profile::deserialize: missing name");
  return profile;
}

// --- generators ------------------------------------------------------------

Profile Profile::do160_thermal_shock(double t_cold, double t_hot, double ramp_rate_k_per_min,
                                     double dwell_seconds) {
  if (!(t_hot > t_cold))
    throw std::invalid_argument("do160_thermal_shock: t_hot must exceed t_cold");
  if (!(ramp_rate_k_per_min > 0.0) || !(dwell_seconds > 0.0))
    throw std::invalid_argument("do160_thermal_shock: rate and dwell must be positive");
  const double ramp_seconds = (t_hot - t_cold) / (ramp_rate_k_per_min / 60.0);
  Profile p("do160_thermal_shock");
  p.add_phase(Phase::constant("cold_soak", dwell_seconds, t_cold));
  p.add_phase(Phase::ramp("ramp_hot", ramp_seconds, t_cold, t_hot));
  p.add_phase(Phase::constant("hot_soak", dwell_seconds, t_hot));
  p.add_phase(Phase::ramp("ramp_cold", ramp_seconds, t_hot, t_cold));
  p.add_phase(Phase::constant("cold_recovery", dwell_seconds, t_cold));
  return p;
}

Profile Profile::arinc600_flight(double t_ground, double t_cruise, double time_scale) {
  if (!(time_scale > 0.0))
    throw std::invalid_argument("arinc600_flight: time_scale must be positive");
  if (!(t_ground > t_cruise))
    throw std::invalid_argument("arinc600_flight: ground must be warmer than cruise");
  Profile p("arinc600_flight");
  const double s = time_scale;
  // Taxi: hot ramp air, fans only (poor flow), nominal power.
  p.add_phase(Phase::constant("taxi", 600.0 * s, t_ground, 0.6, 1.0));
  // Takeoff: full dissipation, flow building up as the bleed system spools.
  {
    Phase takeoff = Phase::ramp("takeoff", 120.0 * s, t_ground, t_ground - 10.0, 0.6, 1.25);
    takeoff.h_scale_end = 1.0;
    p.add_phase(std::move(takeoff));
  }
  // Climb: ambient falls to the cruise level, cooling at full flow.
  p.add_phase(Phase::ramp("climb", 900.0 * s, t_ground - 10.0, t_cruise, 1.0, 1.1));
  p.add_phase(Phase::constant("cruise", 3600.0 * s, t_cruise, 1.0, 1.0));
  // Descent: ambient recovers toward ground, reduced dissipation.
  {
    Phase descent = Phase::ramp("descent", 1200.0 * s, t_cruise, t_ground - 5.0, 1.0, 0.9);
    descent.h_scale_end = 0.8;
    p.add_phase(std::move(descent));
  }
  {
    Phase landing = Phase::ramp("landing", 300.0 * s, t_ground - 5.0, t_ground, 0.8, 0.8);
    landing.h_scale_end = 0.6;
    p.add_phase(std::move(landing));
  }
  return p;
}

Profile Profile::cubesat_eclipse(std::size_t orbits, double period_seconds,
                                 double eclipse_fraction, double t_sunlit, double t_eclipse,
                                 double eclipse_power_scale) {
  if (orbits == 0) throw std::invalid_argument("cubesat_eclipse: need at least one orbit");
  if (!(period_seconds > 0.0))
    throw std::invalid_argument("cubesat_eclipse: period must be positive");
  if (!(eclipse_fraction > 0.0) || !(eclipse_fraction < 1.0))
    throw std::invalid_argument("cubesat_eclipse: eclipse fraction must be in (0, 1)");
  Profile p("cubesat_eclipse");
  const double sunlit_s = period_seconds * (1.0 - eclipse_fraction);
  const double eclipse_s = period_seconds * eclipse_fraction;
  for (std::size_t orbit = 0; orbit < orbits; ++orbit) {
    p.add_phase(Phase::constant("sunlit_" + std::to_string(orbit), sunlit_s, t_sunlit));
    p.add_phase(Phase::constant("eclipse_" + std::to_string(orbit), eclipse_s, t_eclipse, 1.0,
                                eclipse_power_scale));
  }
  return p;
}

}  // namespace aeropack::mission
