#include "mission/service_graphs.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "core/artifact_cache.hpp"
#include "core/scenario_service.hpp"
#include "mission/profile.hpp"
#include "mission/transient.hpp"
#include "rom/cache.hpp"
#include "rom/canonical.hpp"
#include "thermal/network.hpp"

namespace aeropack::mission {

namespace {

namespace at = aeropack::thermal;

double get_or(const std::map<std::string, double>& m, const std::string& key, double fallback) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

/// Canonical SEB box configured from a spec's loads, with port films in
/// place (the drive supplies the per-step sink temperatures).
at::FvModel seb_mission_model(const core::ScenarioSpec& spec, double t_sink0) {
  rom::CanonicalCase cc = rom::seb_box();
  rom::RomInputs inputs;
  inputs.sink_temperatures.assign(cc.spec.ports.size(), t_sink0);
  inputs.map_powers.reserve(cc.spec.maps.size());
  for (const rom::RomPowerMap& m : cc.spec.maps) {
    const double fallback = m.name == "pcb_components" ? 40.0 : 15.0;
    inputs.map_powers.push_back(get_or(spec.loads, m.name, fallback));
  }
  rom::apply_inputs(cc.model, cc.spec, inputs);
  return std::move(cc.model);
}

/// Adaptive march of `model` through `profile`, assembly shared through the
/// scenario service's ArtifactCache when one is attached. The cache key is
/// the *steady* structural hash — the exact key steady solves of the same
/// structure use, which is the cross-campaign hit class the mission bench
/// gates on.
std::map<std::string, double> run_mission_graph(const at::FvModel& model, const Profile& profile,
                                                const core::ScenarioSpec& spec,
                                                aeropack::ExecutionContext& ctx) {
  AdaptiveOptions adaptive;
  adaptive.tolerance = get_or(spec.params, "tolerance", adaptive.tolerance);
  adaptive.dt_max = get_or(spec.params, "dt_max", adaptive.dt_max);
  const double t_initial = get_or(spec.params, "t_initial", 293.15);

  const at::FvOptions fv_opts;
  std::shared_ptr<const at::FvAssembly> assembly;
  if (core::ArtifactCache* cache = ctx.artifact_cache()) {
    assembly = cache->get_or_build<at::FvAssembly>(
        model.structural_hash(fv_opts, 0.0),
        [&] { return model.build_assembly(fv_opts, 0.0); },
        [](const at::FvAssembly& a) { return a.cost_bytes(); });
  }
  const MissionSolution sol =
      run_fv_mission(ctx, model, profile, t_initial, adaptive, fv_opts, assembly);

  std::map<std::string, double> out;
  out["t_final_max"] = sol.t_max.back();
  out["t_final_min"] = sol.t_min.back();
  out["t_final_mean"] = sol.t_mean.back();
  out["t_peak_max"] = *std::max_element(sol.t_max.begin(), sol.t_max.end());
  out["t_low_min"] = *std::min_element(sol.t_min.begin(), sol.t_min.end());
  out["steps"] = static_cast<double>(sol.steps_accepted);
  out["step_rejections"] = static_cast<double>(sol.steps_rejected);
  out["phase_transitions"] = static_cast<double>(sol.phase_transitions);
  out["linear_iterations"] = static_cast<double>(sol.linear_iterations);
  out["structure_assemblies"] = static_cast<double>(sol.structure_assemblies);
  out["sim_seconds"] = profile.total_duration();
  return out;
}

std::map<std::string, double> mission_seb_do160(const core::ScenarioSpec& spec,
                                                aeropack::ExecutionContext& ctx) {
  const double t_cold = get_or(spec.boundaries, "t_cold", 228.15);
  const double t_hot = get_or(spec.boundaries, "t_hot", 328.15);
  const Profile profile =
      Profile::do160_thermal_shock(t_cold, t_hot, get_or(spec.params, "ramp_rate", 5.0),
                                   get_or(spec.params, "dwell_s", 1800.0));
  const at::FvModel model = seb_mission_model(spec, t_cold);
  return run_mission_graph(model, profile, spec, ctx);
}

std::map<std::string, double> mission_seb_eclipse(const core::ScenarioSpec& spec,
                                                  aeropack::ExecutionContext& ctx) {
  const double t_sunlit = get_or(spec.boundaries, "t_sunlit", 313.15);
  const double t_eclipse = get_or(spec.boundaries, "t_eclipse", 213.15);
  const Profile profile = Profile::cubesat_eclipse(
      static_cast<std::size_t>(get_or(spec.params, "orbits", 2.0)),
      get_or(spec.params, "period_s", 600.0), get_or(spec.params, "eclipse_fraction", 0.35),
      t_sunlit, t_eclipse, get_or(spec.params, "eclipse_power_scale", 0.6));
  const at::FvModel model = seb_mission_model(spec, t_sunlit);
  return run_mission_graph(model, profile, spec, ctx);
}

// Two-node equipment/chassis lumped network under the ARINC 600 flight
// envelope: the Level-1 sizing view of the same integration problem the FV
// graphs resolve in 3-D (paper Fig. 4's resistive-network abstraction).
// Marched by the same adaptive controller as the FV graphs through the
// unified engine — long cruise plateaus coarsen to dt_max while the
// takeoff/descent ramps resolve finely, so the campaign spends far fewer
// implicit solves than the old fixed-dt march at the same tolerance.
std::map<std::string, double> mission_network_flight(const core::ScenarioSpec& spec,
                                                     aeropack::ExecutionContext&) {
  const double t_ground = get_or(spec.boundaries, "t_ground", 328.15);
  const double t_cruise = get_or(spec.boundaries, "t_cruise", 243.15);
  const double time_scale = get_or(spec.params, "time_scale", 0.05);
  const Profile profile = Profile::arinc600_flight(t_ground, t_cruise, time_scale);

  at::ThermalNetwork net;
  const at::NodeId equipment = net.add_node("equipment", 8000.0);
  const at::NodeId chassis = net.add_node("chassis", 15000.0);
  const at::NodeId ambient = net.add_boundary("ambient", t_ground);
  net.add_conductor(equipment, chassis, 2.5);
  net.add_conductor(chassis, ambient, 4.0);
  net.add_heat_load(equipment, get_or(spec.loads, "equipment", 120.0));

  const double t_initial = get_or(spec.params, "t_initial", 293.15);
  AdaptiveOptions adaptive;
  adaptive.tolerance = get_or(spec.params, "tolerance", adaptive.tolerance);
  adaptive.dt_initial = get_or(spec.params, "dt", 5.0) * time_scale;
  adaptive.dt_max = get_or(spec.params, "dt_max", adaptive.dt_max) * time_scale;
  numeric::Vector initial(net.node_count(), t_initial);
  const NetworkMissionSolution sol = run_network_mission(net, profile, initial, adaptive);

  double peak = sol.node_temperatures.front()[equipment];
  for (const numeric::Vector& row : sol.node_temperatures)
    peak = std::max(peak, row[equipment]);
  return {{"t_equipment", sol.node_temperatures.back()[equipment]},
          {"t_chassis", sol.node_temperatures.back()[chassis]},
          {"t_equipment_peak", peak},
          {"steps", static_cast<double>(sol.steps_accepted)},
          {"step_rejections", static_cast<double>(sol.steps_rejected)},
          {"phase_transitions", static_cast<double>(sol.phase_transitions)},
          {"implicit_solves", static_cast<double>(sol.implicit_solves)},
          {"sim_seconds", profile.total_duration()}};
}

/// Shared body of the ROM-fidelity mission graphs: the canonical SEB box is
/// reduced once per structure through rom::get_or_build_rom — the same
/// rom_key the rom steady graphs use, so a mixed campaign shares one
/// compact model — and every mission point marches the reduced coordinates
/// through the profile with the same adaptive controller (and the same
/// output keys) as the FV graphs.
std::map<std::string, double> run_rom_mission_graph(const Profile& profile,
                                                    const core::ScenarioSpec& spec,
                                                    aeropack::ExecutionContext& ctx,
                                                    double t_sink0) {
  rom::CanonicalCase cc = rom::seb_box();
  rom::RomOptions rom_opts;
  const double rank = get_or(spec.params, "rank", 0.0);
  if (rank > 0.0) rom_opts.rank = static_cast<std::size_t>(rank);
  const std::shared_ptr<const rom::RomModel> model =
      rom::get_or_build_rom(ctx.artifact_cache(), cc.model, cc.spec, rom_opts);

  rom::RomInputs base;
  base.sink_temperatures.assign(cc.spec.ports.size(), t_sink0);
  base.map_powers.reserve(cc.spec.maps.size());
  for (const rom::RomPowerMap& m : cc.spec.maps) {
    const double fallback = m.name == "pcb_components" ? 40.0 : 15.0;
    base.map_powers.push_back(get_or(spec.loads, m.name, fallback));
  }

  AdaptiveOptions adaptive;
  adaptive.tolerance = get_or(spec.params, "tolerance", adaptive.tolerance);
  adaptive.dt_max = get_or(spec.params, "dt_max", adaptive.dt_max);
  const double t_initial = get_or(spec.params, "t_initial", 293.15);

  const MissionSolution sol =
      run_rom_mission(model, profile, t_initial, base, adaptive, &cc.model.grid());

  std::map<std::string, double> out;
  out["t_final_max"] = sol.t_max.back();
  out["t_final_min"] = sol.t_min.back();
  out["t_final_mean"] = sol.t_mean.back();
  out["t_peak_max"] = *std::max_element(sol.t_max.begin(), sol.t_max.end());
  out["t_low_min"] = *std::min_element(sol.t_min.begin(), sol.t_min.end());
  out["steps"] = static_cast<double>(sol.steps_accepted);
  out["step_rejections"] = static_cast<double>(sol.steps_rejected);
  out["phase_transitions"] = static_cast<double>(sol.phase_transitions);
  out["rank"] = static_cast<double>(model->rank());
  out["sim_seconds"] = profile.total_duration();
  return out;
}

std::map<std::string, double> mission_rom_do160(const core::ScenarioSpec& spec,
                                                aeropack::ExecutionContext& ctx) {
  const double t_cold = get_or(spec.boundaries, "t_cold", 228.15);
  const double t_hot = get_or(spec.boundaries, "t_hot", 328.15);
  const Profile profile =
      Profile::do160_thermal_shock(t_cold, t_hot, get_or(spec.params, "ramp_rate", 5.0),
                                   get_or(spec.params, "dwell_s", 1800.0));
  return run_rom_mission_graph(profile, spec, ctx, t_cold);
}

std::map<std::string, double> mission_rom_eclipse(const core::ScenarioSpec& spec,
                                                  aeropack::ExecutionContext& ctx) {
  const double t_sunlit = get_or(spec.boundaries, "t_sunlit", 313.15);
  const double t_eclipse = get_or(spec.boundaries, "t_eclipse", 213.15);
  const Profile profile = Profile::cubesat_eclipse(
      static_cast<std::size_t>(get_or(spec.params, "orbits", 2.0)),
      get_or(spec.params, "period_s", 600.0), get_or(spec.params, "eclipse_fraction", 0.35),
      t_sunlit, t_eclipse, get_or(spec.params, "eclipse_power_scale", 0.6));
  return run_rom_mission_graph(profile, spec, ctx, t_sunlit);
}

}  // namespace

void register_mission_graphs(core::ScenarioService& service) {
  service.register_graph("mission_seb_do160", &mission_seb_do160);
  service.register_graph("mission_seb_eclipse", &mission_seb_eclipse);
  service.register_graph("mission_network_flight", &mission_network_flight);
  service.register_graph("mission_rom_do160", &mission_rom_do160);
  service.register_graph("mission_rom_eclipse", &mission_rom_eclipse);
}

}  // namespace aeropack::mission
