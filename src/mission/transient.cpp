#include "mission/transient.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "exec/context.hpp"
#include "obs/registry.hpp"

namespace aeropack::mission {

namespace {

/// Shared pre-validation of every mission entry point: the profile, the
/// initial temperature and the controller knobs are rejected before any
/// stepper (and hence any assembly or counter) is constructed.
void check_mission_arguments(const Profile& profile, double t_initial,
                             const AdaptiveOptions& adaptive) {
  if (profile.phase_count() == 0) {
    throw std::invalid_argument("mission: profile has no phases");
  }
  if (!(t_initial > 0.0) || !std::isfinite(t_initial)) {
    throw std::invalid_argument("mission: initial temperature must be positive and finite");
  }
  core::check_adaptive_options("mission", adaptive);
}

}  // namespace

thermal::FvDrive drive_for(const Profile& profile) {
  if (profile.phase_count() == 0) {
    throw std::invalid_argument("mission::drive_for: profile has no phases");
  }
  thermal::FvDrive drive;
  drive.boundary = [profile](double t, thermal::Face /*face*/,
                             const thermal::BoundaryCondition& bc) {
    const EnvironmentState env = profile.environment(t);
    thermal::BoundaryCondition out = bc;
    switch (bc.kind) {
      case thermal::BoundaryKind::Convection:
        out.temperature = env.t_ambient;
        out.h = bc.h * env.h_scale;
        break;
      case thermal::BoundaryKind::NaturalConvection:
        // Film coefficient comes from the correlation; only the ambient moves.
        out.temperature = env.t_ambient;
        break;
      case thermal::BoundaryKind::ConvectionRadiation:
        out.temperature = env.t_sink;
        out.h = bc.h * env.h_scale;
        break;
      case thermal::BoundaryKind::FixedTemperature:
        out.temperature = env.t_ambient;
        break;
      case thermal::BoundaryKind::Adiabatic:
      case thermal::BoundaryKind::HeatFlux:
        break;
    }
    return out;
  };
  drive.power_scale = [profile](double t) { return profile.environment(t).power_scale; };
  return drive;
}

thermal::NetworkDrive drive_for_network(const Profile& profile) {
  if (profile.phase_count() == 0) {
    throw std::invalid_argument("mission::drive_for_network: profile has no phases");
  }
  thermal::NetworkDrive drive;
  drive.boundary_temperature = [profile](double t, thermal::NodeId /*node*/, double /*stored*/) {
    return profile.environment(t).t_ambient;
  };
  drive.load_scale = [profile](double t) { return profile.environment(t).power_scale; };
  return drive;
}

MissionSolution run_fv_mission(const thermal::FvModel& model, const Profile& profile,
                               double t_initial, const AdaptiveOptions& adaptive,
                               const thermal::FvOptions& fv_opts,
                               std::shared_ptr<const thermal::FvAssembly> assembly) {
  check_mission_arguments(profile, t_initial, adaptive);

  static thread_local obs::CounterHandle steps_counter{"mission.steps"};
  static thread_local obs::CounterHandle reject_counter{"mission.step_rejections"};
  static thread_local obs::CounterHandle phase_counter{"mission.phase_transitions"};
  static thread_local obs::CounterHandle cg_counter{"mission.cg_iterations"};
  // Wall-clock only: excluded from bench gating (tools/check_report.py).
  static thread_local obs::CounterHandle elapsed_counter{"mission.wallclock.elapsed_us"};
  obs::ScopedTimer span("mission.solve");
  const auto wall0 = std::chrono::steady_clock::now();

  const double t_end = profile.total_duration();
  const thermal::FvDrive drive = drive_for(profile);
  thermal::FvTransientStepper stepper(model, fv_opts, std::move(assembly));
  stepper.set_drive(&drive);

  const auto& grid = model.grid();
  const std::size_t n = grid.cell_count();
  numeric::Vector temps(n, t_initial);

  // Cell volumes for the volume-average trace. Serial prefix sums keep the
  // trace values independent of the thread count.
  numeric::Vector volume(n, 0.0);
  double total_volume = 0.0;
  for (std::size_t k = 0; k < grid.nz(); ++k)
    for (std::size_t j = 0; j < grid.ny(); ++j)
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const double v = grid.cell_volume(i, j, k);
        volume[grid.index(i, j, k)] = v;
        total_volume += v;
      }

  MissionSolution out;
  out.structure_assemblies = stepper.structure_assemblies();

  const auto record = [&](double time, const numeric::Vector& field) {
    double mx = field[0], mn = field[0], weighted = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      mx = std::max(mx, field[c]);
      mn = std::min(mn, field[c]);
      weighted += volume[c] * field[c];
    }
    out.times.push_back(time);
    out.t_max.push_back(mx);
    out.t_min.push_back(mn);
    out.t_mean.push_back(weighted / total_volume);
  };
  record(0.0, temps);

  const core::MarchStats stats = core::march_adaptive(
      "mission", stepper, temps, t_end, adaptive,
      [&](double t) { return profile.next_transition(t); },
      [&](std::size_t iters) { cg_counter.add(iters); },
      [&](double t, const numeric::Vector& field, bool landed) {
        steps_counter.add(1);
        if (landed) phase_counter.add(1);
        record(t, field);
      },
      [&] { reject_counter.add(1); });
  out.steps_accepted = stats.steps_accepted;
  out.steps_rejected = stats.steps_rejected;
  out.phase_transitions = stats.boundary_landings;
  out.linear_iterations = stats.step_cost;

  out.final_field = std::move(temps);

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  elapsed_counter.add(static_cast<std::uint64_t>(wall_seconds * 1e6));
  if (obs::enabled()) {
    obs::current().gauge("mission.sim_seconds").set(t_end);
    obs::current().gauge("mission.wall_seconds").set(wall_seconds);
  }
  return out;
}

MissionSolution run_fv_mission(ExecutionContext& ctx, const thermal::FvModel& model,
                               const Profile& profile, double t_initial,
                               const AdaptiveOptions& adaptive,
                               const thermal::FvOptions& fv_opts,
                               std::shared_ptr<const thermal::FvAssembly> assembly) {
  ExecutionContext::Use use(ctx);
  thermal::FvOptions tuned = fv_opts;
  if (tuned.linear.chebyshev_degree == 0) {
    tuned.linear.chebyshev_degree = ctx.config().cg_chebyshev_degree;
  }
  return run_fv_mission(model, profile, t_initial, adaptive, tuned, std::move(assembly));
}

rom::RomDrive drive_for_rom(const Profile& profile, rom::RomInputs base_inputs) {
  if (profile.phase_count() == 0) {
    throw std::invalid_argument("mission::drive_for_rom: profile has no phases");
  }
  for (const Phase& phase : profile.phases()) {
    if (phase.h_scale_start != 1.0 || phase.h_scale_end != 1.0) {
      throw std::invalid_argument(
          "mission::drive_for_rom: profile phase '" + phase.name +
          "' scales film coefficients (h_scale != 1); port films are baked into the "
          "reduced operator — run this profile at FV fidelity instead");
    }
  }
  rom::RomDrive drive;
  drive.inputs = [profile, base = std::move(base_inputs)](double t) {
    const EnvironmentState env = profile.environment(t);
    rom::RomInputs in = base;
    for (std::size_t p = 0; p < in.sink_temperatures.size(); ++p) {
      in.sink_temperatures[p] = env.t_ambient;
    }
    for (std::size_t m = 0; m < in.map_powers.size(); ++m) {
      in.map_powers[m] = base.map_powers[m] * env.power_scale;
    }
    return in;
  };
  return drive;
}

MissionSolution run_rom_mission(const rom::RomModel& model, const Profile& profile,
                                double t_initial, const rom::RomInputs& base_inputs,
                                const AdaptiveOptions& adaptive, const thermal::FvGrid* grid) {
  check_mission_arguments(profile, t_initial, adaptive);

  static thread_local obs::CounterHandle steps_counter{"mission.rom_steps"};
  static thread_local obs::CounterHandle reject_counter{"mission.rom_step_rejections"};
  static thread_local obs::CounterHandle phase_counter{"mission.phase_transitions"};
  // Wall-clock only: excluded from bench gating (tools/check_report.py).
  static thread_local obs::CounterHandle elapsed_counter{"mission.wallclock.elapsed_us"};
  obs::ScopedTimer span("mission.solve_rom");
  const auto wall0 = std::chrono::steady_clock::now();

  const double t_end = profile.total_duration();
  rom::RomTransientStepper stepper(model, base_inputs, drive_for_rom(profile, base_inputs));
  numeric::Vector y = stepper.initial_state(t_initial);

  const std::size_t n = model.basis().rows();
  // Cell volumes for the volume-average trace; a reduced model does not
  // carry its source grid, so callers pass it when they want the
  // FV-comparable weighted mean.
  numeric::Vector volume(n, 1.0);
  double total_volume = static_cast<double>(n);
  if (grid != nullptr) {
    if (grid->cell_count() != n) {
      throw std::invalid_argument("mission: grid cell count does not match the reduced basis");
    }
    total_volume = 0.0;
    for (std::size_t k = 0; k < grid->nz(); ++k)
      for (std::size_t j = 0; j < grid->ny(); ++j)
        for (std::size_t i = 0; i < grid->nx(); ++i) {
          const double v = grid->cell_volume(i, j, k);
          volume[grid->index(i, j, k)] = v;
          total_volume += v;
        }
  }

  MissionSolution out;
  const auto record = [&](double time, const numeric::Vector& reduced) {
    const numeric::Vector field = model.reconstruct(reduced);
    double mx = field[0], mn = field[0], weighted = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      mx = std::max(mx, field[c]);
      mn = std::min(mn, field[c]);
      weighted += volume[c] * field[c];
    }
    out.times.push_back(time);
    out.t_max.push_back(mx);
    out.t_min.push_back(mn);
    out.t_mean.push_back(weighted / total_volume);
  };
  record(0.0, y);

  const core::MarchStats stats = core::march_adaptive(
      "mission", stepper, y, t_end, adaptive,
      [&](double t) { return profile.next_transition(t); }, [](std::size_t) {},
      [&](double t, const numeric::Vector& state, bool landed) {
        steps_counter.add(1);
        if (landed) phase_counter.add(1);
        record(t, state);
      },
      [&] { reject_counter.add(1); });
  out.steps_accepted = stats.steps_accepted;
  out.steps_rejected = stats.steps_rejected;
  out.phase_transitions = stats.boundary_landings;
  out.linear_iterations = stats.step_cost;
  out.final_field = model.reconstruct(y);

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  elapsed_counter.add(static_cast<std::uint64_t>(wall_seconds * 1e6));
  if (obs::enabled()) {
    obs::current().gauge("mission.sim_seconds").set(t_end);
    obs::current().gauge("mission.wall_seconds").set(wall_seconds);
  }
  return out;
}

MissionSolution run_rom_mission(std::shared_ptr<const rom::RomModel> model,
                                const Profile& profile, double t_initial,
                                const rom::RomInputs& base_inputs,
                                const AdaptiveOptions& adaptive, const thermal::FvGrid* grid) {
  if (model == nullptr) {
    throw std::invalid_argument("mission: null reduced model");
  }
  return run_rom_mission(*model, profile, t_initial, base_inputs, adaptive, grid);
}

NetworkMissionSolution run_network_mission(const thermal::ThermalNetwork& net,
                                           const Profile& profile,
                                           const numeric::Vector& initial_temperatures,
                                           const AdaptiveOptions& adaptive,
                                           const thermal::SteadyOptions& opts) {
  if (profile.phase_count() == 0) {
    throw std::invalid_argument("mission: profile has no phases");
  }
  core::check_adaptive_options("mission", adaptive);
  core::check_state_size("mission", initial_temperatures.size(), net.node_count());

  static thread_local obs::CounterHandle steps_counter{"mission.network_steps"};
  static thread_local obs::CounterHandle reject_counter{"mission.network_step_rejections"};
  static thread_local obs::CounterHandle phase_counter{"mission.phase_transitions"};
  obs::ScopedTimer span("mission.solve_network");

  const double t_end = profile.total_duration();
  thermal::NetworkTransientStepper stepper(net, opts, drive_for_network(profile));
  numeric::Vector temps = initial_temperatures;
  stepper.apply_boundaries(0.0, temps);

  NetworkMissionSolution out;
  out.times.push_back(0.0);
  out.node_temperatures.push_back(temps);

  const core::MarchStats stats = core::march_adaptive(
      "mission", stepper, temps, t_end, adaptive,
      [&](double t) { return profile.next_transition(t); }, [](std::size_t) {},
      [&](double t, const numeric::Vector& state, bool landed) {
        steps_counter.add(1);
        if (landed) phase_counter.add(1);
        out.times.push_back(t);
        out.node_temperatures.push_back(state);
      },
      [&] { reject_counter.add(1); });
  out.steps_accepted = stats.steps_accepted;
  out.steps_rejected = stats.steps_rejected;
  out.phase_transitions = stats.boundary_landings;
  out.implicit_solves = stats.step_cost;
  return out;
}

}  // namespace aeropack::mission
