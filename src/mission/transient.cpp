#include "mission/transient.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "exec/context.hpp"
#include "obs/registry.hpp"

namespace aeropack::mission {

namespace {

double clamp(double v, double lo, double hi) { return std::min(hi, std::max(lo, v)); }

}  // namespace

thermal::FvDrive drive_for(const Profile& profile) {
  if (profile.phase_count() == 0) {
    throw std::invalid_argument("mission::drive_for: profile has no phases");
  }
  thermal::FvDrive drive;
  drive.boundary = [profile](double t, thermal::Face /*face*/,
                             const thermal::BoundaryCondition& bc) {
    const EnvironmentState env = profile.environment(t);
    thermal::BoundaryCondition out = bc;
    switch (bc.kind) {
      case thermal::BoundaryKind::Convection:
        out.temperature = env.t_ambient;
        out.h = bc.h * env.h_scale;
        break;
      case thermal::BoundaryKind::NaturalConvection:
        // Film coefficient comes from the correlation; only the ambient moves.
        out.temperature = env.t_ambient;
        break;
      case thermal::BoundaryKind::ConvectionRadiation:
        out.temperature = env.t_sink;
        out.h = bc.h * env.h_scale;
        break;
      case thermal::BoundaryKind::FixedTemperature:
        out.temperature = env.t_ambient;
        break;
      case thermal::BoundaryKind::Adiabatic:
      case thermal::BoundaryKind::HeatFlux:
        break;
    }
    return out;
  };
  drive.power_scale = [profile](double t) { return profile.environment(t).power_scale; };
  return drive;
}

thermal::NetworkDrive drive_for_network(const Profile& profile) {
  if (profile.phase_count() == 0) {
    throw std::invalid_argument("mission::drive_for_network: profile has no phases");
  }
  thermal::NetworkDrive drive;
  drive.boundary_temperature = [profile](double t, thermal::NodeId /*node*/, double /*stored*/) {
    return profile.environment(t).t_ambient;
  };
  drive.load_scale = [profile](double t) { return profile.environment(t).power_scale; };
  return drive;
}

MissionSolution run_fv_mission(const thermal::FvModel& model, const Profile& profile,
                               double t_initial, const AdaptiveOptions& adaptive,
                               const thermal::FvOptions& fv_opts,
                               std::shared_ptr<const thermal::FvAssembly> assembly) {
  if (profile.phase_count() == 0) {
    throw std::invalid_argument("mission: profile has no phases");
  }
  if (!(t_initial > 0.0) || !std::isfinite(t_initial)) {
    throw std::invalid_argument("mission: initial temperature must be positive and finite");
  }
  if (!(adaptive.tolerance > 0.0) || !(adaptive.dt_min > 0.0) ||
      !(adaptive.dt_max >= adaptive.dt_min)) {
    throw std::invalid_argument("mission: adaptive options must satisfy tolerance > 0, "
                                "0 < dt_min <= dt_max");
  }

  static thread_local obs::CounterHandle steps_counter{"mission.steps"};
  static thread_local obs::CounterHandle reject_counter{"mission.step_rejections"};
  static thread_local obs::CounterHandle phase_counter{"mission.phase_transitions"};
  static thread_local obs::CounterHandle cg_counter{"mission.cg_iterations"};
  // Wall-clock only: excluded from bench gating (tools/check_report.py).
  static thread_local obs::CounterHandle elapsed_counter{"mission.wallclock.elapsed_us"};
  obs::ScopedTimer span("mission.solve");
  const auto wall0 = std::chrono::steady_clock::now();

  const double t_end = profile.total_duration();
  const thermal::FvDrive drive = drive_for(profile);
  thermal::FvTransientStepper stepper(model, fv_opts, std::move(assembly));

  const auto& grid = model.grid();
  const std::size_t n = grid.cell_count();
  numeric::Vector temps(n, t_initial);

  // Cell volumes for the volume-average trace. Serial prefix sums keep the
  // trace values independent of the thread count.
  numeric::Vector volume(n, 0.0);
  double total_volume = 0.0;
  for (std::size_t k = 0; k < grid.nz(); ++k)
    for (std::size_t j = 0; j < grid.ny(); ++j)
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const double v = grid.cell_volume(i, j, k);
        volume[grid.index(i, j, k)] = v;
        total_volume += v;
      }

  MissionSolution out;
  out.structure_assemblies = stepper.structure_assemblies();

  const auto record = [&](double time, const numeric::Vector& field) {
    double mx = field[0], mn = field[0], weighted = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      mx = std::max(mx, field[c]);
      mn = std::min(mn, field[c]);
      weighted += volume[c] * field[c];
    }
    out.times.push_back(time);
    out.t_max.push_back(mx);
    out.t_min.push_back(mn);
    out.t_mean.push_back(weighted / total_volume);
  };
  record(0.0, temps);

  double t = 0.0;
  double dt_want = clamp(adaptive.dt_initial, adaptive.dt_min, adaptive.dt_max);
  // Neutral controller memory: behaves like a plain I controller on step 1.
  double err_prev = adaptive.tolerance;
  numeric::Vector trial, half;
  std::size_t attempts = 0;

  while (t < t_end * (1.0 - 1e-12)) {
    if (++attempts > adaptive.max_steps) {
      throw std::runtime_error("mission: adaptive march exceeded max_steps (tolerance too "
                               "tight or dt_min too small for this model)");
    }
    // Never step across a phase boundary: drivers may jump there.
    const double limit = std::min(t_end, profile.next_transition(t));
    const double room = limit - t;
    double dt_try = std::min(dt_want, room);
    const bool boundary_clamped = dt_try < dt_want;

    const double t_next = (dt_try >= room) ? limit : t + dt_try;
    const double h2 = 0.5 * dt_try;

    // Step-doubling: one full step and two half steps from the same state.
    trial = temps;
    std::size_t iters = stepper.step(trial, t_next, dt_try, &drive);
    half = temps;
    iters += stepper.step(half, t + h2, h2, &drive);
    iters += stepper.step(half, t_next, dt_try - h2, &drive);
    out.linear_iterations += iters;
    cg_counter.add(iters);

    double err = 0.0;
    for (std::size_t c = 0; c < n; ++c) err = std::max(err, std::abs(half[c] - trial[c]));

    // At dt_min there is no smaller step to retry with: accept and move on.
    const bool at_floor = dt_try <= adaptive.dt_min * (1.0 + 1e-9);
    if (err <= adaptive.tolerance || at_floor) {
      // Accept the two-half solution (the more accurate of the pair).
      temps.swap(half);
      t = t_next;
      out.steps_accepted += 1;
      steps_counter.add(1);
      if (t >= limit && limit < t_end) {
        out.phase_transitions += 1;
        phase_counter.add(1);
      }
      record(t, temps);

      double factor = adaptive.grow_limit;
      if (err > 0.0) {
        factor = adaptive.safety * std::pow(adaptive.tolerance / err, adaptive.k_i) *
                 std::pow(err_prev / err, adaptive.k_p);
      }
      factor = clamp(factor, adaptive.shrink_limit, adaptive.grow_limit);
      double next_want = clamp(dt_try * factor, adaptive.dt_min, adaptive.dt_max);
      // A boundary-clamped step says nothing about accuracy at dt_want;
      // keep the controller's ambition instead of shrinking toward slivers.
      if (boundary_clamped) next_want = std::max(next_want, dt_want);
      dt_want = next_want;
      err_prev = std::max(err, 1e-4 * adaptive.tolerance);
    } else {
      out.steps_rejected += 1;
      reject_counter.add(1);
      const double factor =
          clamp(adaptive.safety * std::sqrt(adaptive.tolerance / err), adaptive.shrink_limit, 0.9);
      dt_want = std::max(adaptive.dt_min, dt_try * factor);
    }
  }

  out.final_field = std::move(temps);

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  elapsed_counter.add(static_cast<std::uint64_t>(wall_seconds * 1e6));
  if (obs::enabled()) {
    obs::current().gauge("mission.sim_seconds").set(t_end);
    obs::current().gauge("mission.wall_seconds").set(wall_seconds);
  }
  return out;
}

MissionSolution run_fv_mission(ExecutionContext& ctx, const thermal::FvModel& model,
                               const Profile& profile, double t_initial,
                               const AdaptiveOptions& adaptive,
                               const thermal::FvOptions& fv_opts,
                               std::shared_ptr<const thermal::FvAssembly> assembly) {
  ExecutionContext::Use use(ctx);
  thermal::FvOptions tuned = fv_opts;
  if (tuned.linear.chebyshev_degree == 0) {
    tuned.linear.chebyshev_degree = ctx.config().cg_chebyshev_degree;
  }
  return run_fv_mission(model, profile, t_initial, adaptive, tuned, std::move(assembly));
}

}  // namespace aeropack::mission
