// mission::Profile — the serializable time-varying environment schema of the
// mission-profile transient layer (DESIGN.md "Mission profiles").
//
// A profile is a named sequence of phases. Each phase interpolates four
// environment channels linearly from start to end values over its duration:
//  - t_ambient:    the convective sink temperature [K] every temperature-
//                  referencing boundary follows,
//  - h_scale:      a multiplier on fixed film coefficients (flow regimes:
//                  ground idle vs. cruise ram air),
//  - power_scale:  a multiplier on volumetric dissipation (mission-phase
//                  duty cycling),
//  - t_sink:       the radiative sink temperature [K] ConvectionRadiation
//                  faces follow (deep space vs. cabin walls).
// Values are continuous inside a phase and may jump across phase boundaries
// (the CubeSat eclipse square wave is exactly such a discontinuity).
//
// Like core::ScenarioSpec, a profile is pure data: serialize()/deserialize()
// round-trip losslessly over a one-line wire form ("mission/1|..." with %a
// hexfloat values), and content_hash() is FNV-1a over exact IEEE-754 bit
// patterns — equal hashes mean bitwise-equal drivers, so campaigns keyed by
// (spec content hash, profile content hash) deduplicate exactly. The display
// name is excluded from the hash, mirroring ScenarioSpec::content_hash.
//
// Profile data deliberately never enters any structural hash: drivers change
// boundary values per step, not operator structure, so every mission point
// shares the same steady FvAssembly through core::ArtifactCache (see
// CONTRIBUTING.md "Driver hashing rules").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aeropack::mission {

/// The four environment channels at one instant of mission time.
struct EnvironmentState {
  double t_ambient = 293.15;  ///< convective sink temperature [K]
  double h_scale = 1.0;       ///< film-coefficient multiplier
  double power_scale = 1.0;   ///< dissipation multiplier
  double t_sink = 293.15;     ///< radiative sink temperature [K]
};

/// One mission phase: linear interpolation of every channel from its start
/// to its end value over `duration` seconds.
struct Phase {
  std::string name;
  double duration = 0.0;  ///< [s], must be > 0
  double t_ambient_start = 293.15, t_ambient_end = 293.15;
  double h_scale_start = 1.0, h_scale_end = 1.0;
  double power_scale_start = 1.0, power_scale_end = 1.0;
  double t_sink_start = 293.15, t_sink_end = 293.15;

  /// Constant-environment phase (dwells, eclipse plateaus). The radiative
  /// sink tracks the ambient unless set explicitly afterwards.
  static Phase constant(std::string name, double duration, double t_ambient,
                        double h_scale = 1.0, double power_scale = 1.0);
  /// Linear ambient ramp (thermal-shock transitions, climb/descent). The
  /// radiative sink tracks the ambient ramp; scales stay at their defaults.
  static Phase ramp(std::string name, double duration, double t_from, double t_to,
                    double h_scale = 1.0, double power_scale = 1.0);

  friend bool operator==(const Phase& a, const Phase& b) = default;
};

class Profile {
 public:
  Profile() = default;
  explicit Profile(std::string name) : name_(std::move(name)) {}

  /// Display name. NOT part of content_hash(): two profiles that differ only
  /// in name drive bitwise-identical campaigns.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a phase. Throws std::invalid_argument on non-positive or
  /// non-finite duration, non-finite channel values, or non-positive
  /// temperatures (all temperatures are absolute kelvin).
  void add_phase(Phase phase);

  std::size_t phase_count() const { return phases_.size(); }
  const Phase& phase(std::size_t i) const;
  const std::vector<Phase>& phases() const { return phases_; }

  /// Sum of phase durations [s]; 0 for an empty profile.
  double total_duration() const;
  /// Mission time at which phase `i` begins.
  double phase_start(std::size_t i) const;

  /// Phase owning mission time `t`: t in (start_i, start_i + duration_i]
  /// maps to phase i, t <= 0 to phase 0, t past the end to the last phase.
  /// A step that ends exactly on a boundary therefore samples the closing
  /// phase's end values and the next step samples the opening phase — the
  /// clean semantics for square-wave drivers. Throws std::logic_error on an
  /// empty profile.
  std::size_t phase_index(double t) const;

  /// The first phase end time strictly after `t` (the next driver
  /// discontinuity an adaptive march must not step across), clamped to
  /// total_duration(). Throws std::logic_error on an empty profile.
  double next_transition(double t) const;

  /// Environment at mission time `t`, clamped into [0, total_duration()].
  EnvironmentState environment(double t) const;

  /// FNV-1a over phase count, phase names and the exact IEEE-754 bits of
  /// every channel value — the profile's identity as a driver. Excludes the
  /// display name.
  std::uint64_t content_hash() const;

  /// One-line lossless text form:
  /// "mission/1|name=...|phase:<name>=<dur>,<ta0>,<ta1>,<h0>,<h1>,<p0>,<p1>,<ts0>,<ts1>"
  /// with %a hexfloat values and ScenarioSpec's %XX escaping for '%', '|',
  /// '=' and control characters in names. Phase order is preserved.
  std::string serialize() const;
  /// Inverse of serialize(). Throws std::invalid_argument on malformed
  /// input (bad magic, bad escape, wrong field count, unparsable value) and
  /// re-validates every phase through add_phase.
  static Profile deserialize(const std::string& text);

  friend bool operator==(const Profile& a, const Profile& b) = default;

  // --- built-in generators ---------------------------------------------
  // Each returns a ready-to-run qualification driver; parameters default to
  // the paper's qualification levels.

  /// DO-160 section 5 thermal shock: cold soak, ramp to hot at
  /// `ramp_rate_k_per_min` (DO-160's 5 deg C/min default), hot soak, ramp
  /// back and a final cold recovery dwell. Ambient and radiative sink move
  /// together; film and power scales stay at 1.
  static Profile do160_thermal_shock(double t_cold = 228.15, double t_hot = 328.15,
                                     double ramp_rate_k_per_min = 5.0,
                                     double dwell_seconds = 1800.0);

  /// ARINC 600 flight envelope: taxi (hot ramp air, poor flow), takeoff
  /// (full power), climb (ambient falling to cruise), cruise, descent and
  /// landing roll. `time_scale` compresses every duration (tests/benches
  /// run scaled campaigns; 1.0 is the ~2 h reference envelope).
  static Profile arinc600_flight(double t_ground = 328.15, double t_cruise = 243.15,
                                 double time_scale = 1.0);

  /// CubeSat orbital eclipse cycling (PAPERS.md, arXiv:1803.10468): a
  /// square wave of `orbits` periods, sunlit at `t_sunlit` with full power,
  /// eclipsed at `t_eclipse` with the payload duty-cycled to
  /// `eclipse_power_scale`.
  static Profile cubesat_eclipse(std::size_t orbits = 3, double period_seconds = 5400.0,
                                 double eclipse_fraction = 0.35, double t_sunlit = 313.15,
                                 double t_eclipse = 213.15,
                                 double eclipse_power_scale = 0.6);

 private:
  std::string name_;
  std::vector<Phase> phases_;
  std::vector<double> starts_;  ///< cumulative phase start times
};

}  // namespace aeropack::mission
