#include "obs/registry.hpp"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>

namespace aeropack::obs {

namespace detail {
thread_local Registry* t_current = nullptr;
}  // namespace detail

Registry* exchange_current(Registry* r) {
  Registry* prev = detail::t_current;
  detail::t_current = r;
  return prev;
}

void enable() { current().enable(); }
void disable() { current().disable(); }

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A set, non-empty, non-"0" AEROPACK_TELEMETRY arms the process-default
// registry at first use (per-context registries arm via ExecutionConfig).
bool env_telemetry_enabled() {
  const char* v = std::getenv("AEROPACK_TELEMETRY");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::uint64_t next_registry_uid() {
  // Starts at 1: handles reserve 0 as their unresolved sentinel. Never
  // reused, so a stale handle can never mistake a new registry allocated at
  // a destroyed one's address for the registry it cached.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// One span-tree node. calls/ns are atomics so closing a span never takes the
// tree mutex; the mutex only guards structure (child lookup/creation).
struct TimerNode {
  std::string name;
  TimerNode* parent = nullptr;
  std::deque<TimerNode> children;  // deque: child addresses must stay stable
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::int64_t> ns{0};
};

// Innermost open span of this thread; new spans attach under it. Null means
// the next span opens at the root of the thread's current registry. Spans
// must close before the current registry changes, so one cursor serves all
// registries.
thread_local TimerNode* t_span = nullptr;

}  // namespace

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map: node handles keep instrument addresses stable across inserts.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Highwater> highwaters;
  TimerNode timer_root;  // name empty; never reported itself

  TimerNode* child_of(TimerNode* parent, const char* name) {
    std::lock_guard<std::mutex> lock(mutex);
    for (auto& c : parent->children)
      if (c.name == name) return &c;
    TimerNode& node = parent->children.emplace_back();
    node.name = name;
    node.parent = parent;
    return &node;
  }

  static void reset_node(TimerNode& node) {
    node.calls.store(0, std::memory_order_relaxed);
    node.ns.store(0, std::memory_order_relaxed);
    for (auto& c : node.children) reset_node(c);
  }

  void flatten(const TimerNode& node, const std::string& prefix, std::size_t depth,
               std::vector<TimerEntry>& out) const {
    for (const auto& c : node.children) {
      const std::string path = prefix.empty() ? c.name : prefix + "/" + c.name;
      const std::uint64_t calls = c.calls.load(std::memory_order_relaxed);
      if (calls > 0)
        out.push_back({path, calls,
                       static_cast<double>(c.ns.load(std::memory_order_relaxed)) * 1e-9,
                       depth});
      flatten(c, path, depth + 1, out);
    }
  }
};

Registry::Registry(bool enabled)
    : armed_(enabled), uid_(next_registry_uid()), impl_(new Impl) {}

Registry::~Registry() { delete impl_; }

Registry& Registry::instance() {
  // Leaked: telemetry may fire from destructors of other static objects.
  static Registry* const reg = new Registry(env_telemetry_enabled());
  return *reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->counters.try_emplace(name, &armed_).first->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->gauges.try_emplace(name, &armed_).first->second;
}

Highwater& Registry::highwater(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->highwaters.try_emplace(name, &armed_).first->second;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->highwaters) h.reset();
  Impl::reset_node(impl_->timer_root);
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : impl_->counters) out[name] = c.value();
  for (const auto& [name, h] : impl_->highwaters) out[name] = h.value();
  return out;
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::map<std::string, double> out;
  for (const auto& [name, g] : impl_->gauges) out[name] = g.value();
  return out;
}

std::vector<TimerEntry> Registry::timers() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<TimerEntry> out;
  impl_->flatten(impl_->timer_root, "", 0, out);
  return out;
}

ScopedTimer::ScopedTimer(const char* name) {
  Registry& reg = current();
  if (!reg.enabled()) return;
  Registry::Impl* impl = reg.impl_;
  TimerNode* parent = t_span != nullptr ? t_span : &impl->timer_root;
  TimerNode* node = impl->child_of(parent, name);
  node_ = node;
  parent_ = t_span;
  t_span = node;
  t0_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (node_ == nullptr) return;  // telemetry was dormant at construction
  TimerNode* node = static_cast<TimerNode*>(node_);
  node->calls.fetch_add(1, std::memory_order_relaxed);
  node->ns.fetch_add(now_ns() - t0_ns_, std::memory_order_relaxed);
  t_span = static_cast<TimerNode*>(parent_);
}

std::string indexed_key(const char* prefix, std::size_t index, const char* suffix) {
  std::string key(prefix);
  key += '.';
  if (index < 10) key += '0';
  key += std::to_string(index);
  key += '.';
  key += suffix;
  return key;
}

}  // namespace aeropack::obs
