#include "obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace aeropack::obs {

Report Report::capture(const std::string& name, std::size_t threads) {
  return capture(current(), name, threads);
}

Report Report::capture(const Registry& registry, const std::string& name,
                       std::size_t threads) {
  Report r;
  r.name_ = name;
  r.threads_ = threads;
  r.counters_ = registry.counters();
  r.gauges_ = registry.gauges();
  r.timers_ = registry.timers();
  return r;
}

void Report::set_meta(const std::string& key, double value) { meta_[key] = value; }

void Report::add_counters(const std::string& prefix,
                          const std::map<std::string, std::uint64_t>& counters) {
  for (const auto& [key, value] : counters) counters_[prefix + "." + key] = value;
}

void Report::add_gauges(const std::string& prefix, const std::map<std::string, double>& gauges) {
  for (const auto& [key, value] : gauges) gauges_[prefix + "." + key] = value;
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Keys are dotted instrument names (no quotes/backslashes in practice), but
// escape anyway so a stray name cannot produce invalid JSON.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string Report::to_json() const {
  // One flat object of scalar values, section-prefixed keys, sorted within
  // each section — the golden-file JSON subset plus one string-valued
  // "report" label, which tools/check_report.py skips when gating counters.
  std::ostringstream out;
  out << "{\n";
  out << "  \"report\": \"" << escape(name_) << "\",\n";
  out << "  \"threads\": " << threads_;
  for (const auto& [key, value] : meta_)
    out << ",\n  \"meta." << escape(key) << "\": " << fmt_double(value);
  for (const auto& [key, value] : counters_)
    out << ",\n  \"counters." << escape(key) << "\": " << value;
  for (const auto& [key, value] : gauges_)
    out << ",\n  \"gauges." << escape(key) << "\": " << fmt_double(value);
  for (const auto& entry : timers_) {
    out << ",\n  \"timers." << escape(entry.path) << ".calls\": " << entry.calls;
    out << ",\n  \"timers." << escape(entry.path) << ".seconds\": " << fmt_double(entry.seconds);
  }
  out << "\n}\n";
  return out.str();
}

void Report::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("obs::Report: cannot open " + path + " for writing");
  out << to_json();
  if (!out) throw std::runtime_error("obs::Report: write to " + path + " failed");
}

}  // namespace aeropack::obs
