// Structured solver telemetry: named monotonic counters, last-write gauges,
// high-water marks and an RAII span timer tree, grouped into registries.
//
// Design constraints (see DESIGN.md "Observability" and "Execution
// contexts"):
//  - Zero dependencies: obs sits below numeric in the subsystem order so
//    every layer (kernels, solvers, benches) can report through it.
//  - Per-context registries: every aeropack::ExecutionContext owns a
//    Registry; instrumentation sites resolve the *current* registry of the
//    calling thread (bound by ExecutionContext::Use, defaulting to the
//    process-wide Registry::instance()), so concurrent solves on isolated
//    contexts record into disjoint instrument sets.
//  - Dormant by default: instrumentation is compiled in but every mutation
//    is gated on one relaxed atomic-bool load (the owning registry's armed
//    flag), so hot loops pay a single predictable branch when telemetry is
//    off (the 64^3 CG overhead test in tests/obs/test_overhead.cpp pins
//    this to run-to-run noise).
//  - The default registry is enabled via the AEROPACK_TELEMETRY environment
//    variable (any value but "" or "0") or programmatically with enable();
//    per-context registries are armed through their ExecutionConfig.
//  - Counters are std::atomic and safe to bump from worker threads; spans
//    (ScopedTimer) keep a thread-local cursor into a mutex-guarded tree, so
//    nesting is tracked per thread and the structure stays consistent.
//  - Instrument *addresses* handed out by a Registry are stable for that
//    registry's lifetime; Registry::reset() zeroes values but never
//    invalidates them. Instrumentation sites must NOT cache bare
//    `static obs::Counter&` refs (that would pin one registry for the whole
//    process) — they declare `static thread_local` CounterHandle /
//    GaugeHandle / HighwaterHandle objects, which re-resolve whenever the
//    thread's current registry changes.
//
// The algorithmic counters (Picard passes, CG iterations, factorizations,
// subspace sweeps) are bit-deterministic across thread counts — the PR 1-3
// determinism invariants — so exact values can be frozen as golden contracts
// (tests/obs/) and gated in CI. Scheduling counters (parallel chunks, pool
// queue high-water) are thread-dependent and excluded from those contracts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aeropack::obs {

class Registry;

namespace detail {
/// Registry bound to this thread by ExecutionContext::Use; null means the
/// process-wide default. Not touched directly — see current() / bind below.
extern thread_local Registry* t_current;
}  // namespace detail

/// Monotonic event counter. add() is safe from any thread. Mutations are
/// gated on the owning registry's armed flag (one relaxed load).
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* armed) : armed_(armed) {}
  void add(std::uint64_t n = 1) {
    if (armed_->load(std::memory_order_relaxed))
      value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* armed_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write scalar (final residuals, problem sizes). Safe from any thread;
/// concurrent writers race benignly (last write wins).
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* armed) : armed_(armed) {}
  void set(double v) {
    if (armed_->load(std::memory_order_relaxed))
      value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* armed_;
  std::atomic<double> value_{0.0};
};

/// Monotonic maximum of recorded values (queue depths, envelope sizes).
class Highwater {
 public:
  explicit Highwater(const std::atomic<bool>* armed) : armed_(armed) {}
  void record(std::uint64_t v) {
    if (!armed_->load(std::memory_order_relaxed)) return;
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* armed_;
  std::atomic<std::uint64_t> value_{0};
};

/// One flattened node of the span-timer tree (preorder).
struct TimerEntry {
  std::string path;  ///< "/"-joined span names from the root, e.g. "fv.solve_steady/fv.assemble"
  std::uint64_t calls = 0;
  double seconds = 0.0;
  std::size_t depth = 0;  ///< nesting depth (top-level spans are 0)
};

/// Telemetry registry. Lookup creates on first use and returns a reference
/// that stays valid for the registry's lifetime. The process-wide default
/// lives behind instance(); per-context registries are owned by
/// aeropack::ExecutionContext and die with it — instrumentation sites
/// therefore go through the uid-revalidating handles below, never bare
/// cached references.
class Registry {
 public:
  /// Fresh registry (one per ExecutionContext). `enabled` arms every
  /// instrument it hands out from birth.
  explicit Registry(bool enabled = false);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default registry (leaked: instrumentation sites may fire
  /// during static teardown). Armed at first use when AEROPACK_TELEMETRY is
  /// set, non-empty and not "0".
  static Registry& instance();

  /// True when this registry's instruments record mutations.
  bool enabled() const { return armed_.load(std::memory_order_relaxed); }
  void enable() { armed_.store(true, std::memory_order_relaxed); }
  void disable() { armed_.store(false, std::memory_order_relaxed); }

  /// Monotonic id distinguishing registry instances for the process
  /// lifetime (never reused, so a handle cache cannot alias a new registry
  /// allocated at a freed one's address). Starts at 1; handles use 0 as
  /// their unresolved sentinel.
  std::uint64_t uid() const { return uid_; }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Highwater& highwater(const std::string& name);

  /// Zero every counter/gauge/highwater and all span statistics. Instrument
  /// addresses and the span-tree structure stay valid. Must not be called
  /// while a ScopedTimer span is open.
  void reset();

  /// Snapshots for reports and tests. counters() merges plain counters and
  /// high-water marks into one monotonic map (sorted keys — deterministic).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  /// Preorder flatten of the span tree; spans with zero calls are omitted.
  std::vector<TimerEntry> timers() const;

 private:
  friend class ScopedTimer;
  struct Impl;
  std::atomic<bool> armed_{false};
  std::uint64_t uid_;
  Impl* impl_;
};

/// Registry the instrumentation sites of this thread report to: the one
/// bound by ExecutionContext::Use, or the process default.
inline Registry& current() {
  return detail::t_current != nullptr ? *detail::t_current : Registry::instance();
}

/// Bind `r` as this thread's current registry (nullptr restores the process
/// default); returns the previous binding. Prefer ExecutionContext::Use,
/// which pairs this with the matching thread-pool binding. Must not be
/// called while a ScopedTimer span is open on this thread.
Registry* exchange_current(Registry* r);

/// True when the current registry records mutations. One thread-local read
/// plus one relaxed load — this is the dormant fast path every
/// instrumentation site branches on.
inline bool enabled() { return current().enabled(); }

/// Turn telemetry on/off for the current registry (the process default when
/// no context is bound; also settable via AEROPACK_TELEMETRY).
void enable();
void disable();

namespace detail {

/// Per-site, per-thread instrument cache shared by the three handle types:
/// re-resolves by name whenever the thread's current registry changes
/// (compared by uid, which is never reused).
template <typename Instrument, Instrument& (Registry::*Lookup)(const std::string&)>
class Handle {
 public:
  explicit Handle(const char* name) : name_(name) {}
  /// Instrument for the current registry, creating it on first use.
  Instrument& get() {
    Registry& reg = current();
    if (uid_ != reg.uid()) {
      instrument_ = &(reg.*Lookup)(name_);
      uid_ = reg.uid();
    }
    return *instrument_;
  }

 private:
  const char* name_;
  std::uint64_t uid_ = 0;  // 0 = unresolved (uids start at 1)
  Instrument* instrument_ = nullptr;
};

}  // namespace detail

/// Instrumentation-site handles. Declare as `static thread_local` at the
/// site so the name→instrument resolution is cached per thread yet follows
/// the thread's current registry:
///   static thread_local obs::CounterHandle solves{"fv.steady_solves"};
///   solves.add();
class CounterHandle : public detail::Handle<Counter, &Registry::counter> {
 public:
  using Handle::Handle;
  void add(std::uint64_t n = 1) { get().add(n); }
};

class GaugeHandle : public detail::Handle<Gauge, &Registry::gauge> {
 public:
  using Handle::Handle;
  void set(double v) { get().set(v); }
};

class HighwaterHandle : public detail::Handle<Highwater, &Registry::highwater> {
 public:
  using Handle::Handle;
  void record(std::uint64_t v) { get().record(v); }
};

/// RAII nested span: accumulates wall time and call count under the
/// innermost open span of the current thread, in the thread's current
/// registry. Dormant-telemetry spans cost one branch and touch no shared
/// state. Spans must be strictly nested per thread (automatic with scoped
/// lifetime), and the current registry must not change while a span is open.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void* node_ = nullptr;    // TimerNode*, null when dormant at construction
  void* parent_ = nullptr;  // previous thread-local cursor
  std::int64_t t0_ns_ = 0;
};

/// "prefix.NN.suffix"-style key for per-iteration gauges; pads the index to
/// two digits so report keys sort in pass order.
std::string indexed_key(const char* prefix, std::size_t index, const char* suffix);

}  // namespace aeropack::obs
