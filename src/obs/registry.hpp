// Structured solver telemetry: a process-wide registry of named monotonic
// counters, last-write gauges, high-water marks and an RAII span timer tree.
//
// Design constraints (see DESIGN.md "Observability"):
//  - Zero dependencies: obs sits below numeric in the subsystem order so
//    every layer (kernels, solvers, benches) can report through it.
//  - Dormant by default: instrumentation is compiled in but every mutation
//    is gated on one relaxed atomic-bool load, so hot loops pay a single
//    predictable branch when telemetry is off (the 64^3 CG overhead test in
//    tests/obs/test_overhead.cpp pins this to run-to-run noise).
//  - Enabled via the AEROPACK_TELEMETRY environment variable (any value but
//    "" or "0", read once before main) or programmatically with enable().
//  - Counters are std::atomic and safe to bump from worker threads; spans
//    (ScopedTimer) keep a thread-local cursor into a mutex-guarded tree, so
//    nesting is tracked per thread and the structure stays consistent.
//  - Counter*addresses* handed out by Registry are stable for the process
//    lifetime; Registry::reset() zeroes values but never invalidates them,
//    which lets instrumentation sites cache `static obs::Counter&` refs.
//
// The algorithmic counters (Picard passes, CG iterations, factorizations,
// subspace sweeps) are bit-deterministic across thread counts — the PR 1-3
// determinism invariants — so exact values can be frozen as golden contracts
// (tests/obs/) and gated in CI. Scheduling counters (parallel chunks, pool
// queue high-water) are thread-dependent and excluded from those contracts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aeropack::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True when telemetry mutations are recorded. One relaxed load — this is
/// the dormant fast path every instrumentation site branches on.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Turn telemetry on/off at runtime (also settable via AEROPACK_TELEMETRY).
void enable();
void disable();

/// Monotonic event counter. add() is safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write scalar (final residuals, problem sizes). Safe from any thread;
/// concurrent writers race benignly (last write wins).
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Monotonic maximum of recorded values (queue depths, envelope sizes).
class Highwater {
 public:
  void record(std::uint64_t v) {
    if (!enabled()) return;
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// One flattened node of the span-timer tree (preorder).
struct TimerEntry {
  std::string path;  ///< "/"-joined span names from the root, e.g. "fv.solve_steady/fv.assemble"
  std::uint64_t calls = 0;
  double seconds = 0.0;
  std::size_t depth = 0;  ///< nesting depth (top-level spans are 0)
};

/// Process-wide telemetry registry. Lookup creates on first use and returns
/// a reference with process-lifetime stability, so hot paths resolve their
/// instruments once (`static obs::Counter& c = ...counter("name");`).
class Registry {
 public:
  /// Leaked singleton (never destroyed: instrumentation sites may fire
  /// during static teardown).
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Highwater& highwater(const std::string& name);

  /// Zero every counter/gauge/highwater and all span statistics. Instrument
  /// addresses and the span-tree structure stay valid. Must not be called
  /// while a ScopedTimer span is open.
  void reset();

  /// Snapshots for reports and tests. counters() merges plain counters and
  /// high-water marks into one monotonic map.
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  /// Preorder flatten of the span tree; spans with zero calls are omitted.
  std::vector<TimerEntry> timers() const;

 private:
  Registry();
  ~Registry() = delete;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  friend class ScopedTimer;
  struct Impl;
  Impl* impl_;
};

/// RAII nested span: accumulates wall time and call count under the
/// innermost open span of the current thread. Dormant-telemetry spans cost
/// one branch and touch no shared state. Spans must be strictly nested per
/// thread (automatic with scoped lifetime).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void* node_ = nullptr;    // TimerNode*, null when dormant at construction
  void* parent_ = nullptr;  // previous thread-local cursor
  std::int64_t t0_ns_ = 0;
};

/// "prefix.NN.suffix"-style key for per-iteration gauges; pads the index to
/// two digits so report keys sort in pass order.
std::string indexed_key(const char* prefix, std::size_t index, const char* suffix);

}  // namespace aeropack::obs
