// obs::Report — a snapshot of the registry serialized to flat JSON in the
// BENCH_*.json style: one object with scalar-valued keys, section-prefixed
// ("counters.fv.picard_passes", "timers.fv.solve_steady.seconds"), stable
// (sorted) key order and round-trippable doubles. Consumers are the bench
// `--report out.json` flag and the CI bench-smoke counter gate
// (tools/check_report.py).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "obs/registry.hpp"

namespace aeropack::obs {

class Report {
 public:
  /// Snapshot the calling thread's current registry (the one bound by
  /// ExecutionContext::Use, else the process default). `name` labels the run
  /// (bench binary or scenario); `threads` is supplied by the caller (obs
  /// sits below numeric, so it cannot ask the thread pool itself).
  static Report capture(const std::string& name, std::size_t threads);

  /// Snapshot a specific registry — e.g. an ExecutionContext's metrics after
  /// the solve finished, from a thread the context was never bound on.
  static Report capture(const Registry& registry, const std::string& name,
                        std::size_t threads);

  /// Attach run metadata (mesh sizes, DOF counts, config) as "meta.<key>".
  void set_meta(const std::string& key, double value);

  /// Merge an externally captured counter map under "counters.<prefix>.<key>"
  /// — how ScenarioRunner results fold each scenario's isolated registry
  /// into one report (keys stay sorted, so emission order is deterministic).
  void add_counters(const std::string& prefix,
                    const std::map<std::string, std::uint64_t>& counters);

  /// Gauge-valued counterpart of add_counters: merge an externally captured
  /// gauge map under "gauges.<prefix>.<key>" (ScenarioResult::gauges).
  void add_gauges(const std::string& prefix, const std::map<std::string, double>& gauges);

  const std::string& name() const { return name_; }
  std::size_t threads() const { return threads_; }
  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::vector<TimerEntry>& timers() const { return timers_; }

  /// Flat-JSON serialization (sorted keys, "%.17g" doubles).
  std::string to_json() const;

  /// Write to_json() to `path`; throws std::runtime_error if unwritable.
  void write(const std::string& path) const;

 private:
  std::string name_;
  std::size_t threads_ = 0;
  std::map<std::string, double> meta_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::vector<TimerEntry> timers_;
};

}  // namespace aeropack::obs
