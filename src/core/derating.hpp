// Component derating policy checks. Avionics design documents do not allow
// parts to run at their datasheet limits: junction temperatures, power and
// voltage are derated (NAVMAT P4855 / ECSS-Q-ST-30-11 style). This module
// renders those rules so the Level-3 results can be judged the way the
// paper's "safety and reliability calculations" judge them.
#pragma once

#include <string>
#include <vector>

#include "core/equipment.hpp"

namespace aeropack::core {

/// A derating policy: fractions of the absolute maximum that design may use.
struct DeratingPolicy {
  std::string name;
  /// Junction temperature: T_j <= T_limit - margin (absolute kelvin margin).
  double junction_margin = 20.0;       ///< [K] below the 125 C limit
  /// Power: dissipation <= fraction of the part's rated power.
  double power_fraction = 0.75;
  /// Flux: footprint heat flux cap [W/m^2] before a spreader is mandated.
  double flux_limit = 15e4;            ///< 15 W/cm^2

  static DeratingPolicy navmat();      ///< classic NAVMAT P4855-1 style
  static DeratingPolicy commercial();  ///< relaxed COTS practice
};

struct DeratingFinding {
  std::string reference;
  std::string rule;
  double actual = 0.0;
  double allowed = 0.0;
  bool violation = false;
};

struct DeratingReport {
  std::vector<DeratingFinding> findings;  ///< violations only
  std::size_t checks = 0;
  bool compliant = false;
};

/// Check every component of the equipment against the policy, using the
/// Level-3 junction temperatures (`junctions` parallel to the BOM order of
/// Equipment::bill_of_materials; pass the spec junction limit).
DeratingReport check_derating(const Equipment& eq, const DeratingPolicy& policy,
                              const std::vector<double>& junction_temperatures,
                              double junction_limit_k,
                              const std::vector<double>& rated_powers = {});

}  // namespace aeropack::core
