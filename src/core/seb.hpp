// COSEE seat-electronic-box (SEB) cooling scenario — the paper's headline
// experiment (Fig. 10). An IFE box under a passenger seat, not connected to
// the aircraft ECS, is cooled either by natural convection alone or by a
// two-phase chain: heat pipes spread the component heat to the box edge;
// thermal interface joints couple the edge to two loop-heat-pipe
// evaporators; the LHPs carry the heat to the seat's structural rods, which
// reject it to cabin air by natural convection + radiation.
//
// The model is a nonlinear thermal network with the HP / TIM / LHP / fin
// submodels of the substrate libraries. Reported quantity matches Fig. 10:
// T_pcb - T_air versus total SEB power, for (a) no LHP, (b) LHP horizontal,
// (c) LHP tilted 22 degrees.
#pragma once

#include <optional>

#include "numeric/dense.hpp"

#include "materials/solid.hpp"
#include "tim/tim_material.hpp"
#include "twophase/heat_pipe.hpp"
#include "twophase/loop_heat_pipe.hpp"

namespace aeropack::core {

/// Seat structural members used as the remote heat sink.
struct SeatStructure {
  materials::SolidMaterial material = materials::aluminum_6061();
  double rod_diameter = 32e-3;   ///< [m]
  double rod_half_length = 0.55; ///< fin length each side of the attachment [m]
  int rod_count = 2;             ///< two main rods (paper Fig. 9)
  /// Direct convecting area of the condenser saddles bolted along the rods
  /// (the LHP condensers are distributed, not point attachments). [m^2]
  double attachment_area = 0.07;
};

struct SebDesign {
  // Box envelope (typical SEB).
  double box_length = 0.30, box_width = 0.25, box_height = 0.09;  ///< [m]
  double box_emissivity = 0.85;
  /// Under-seat pocket blockage: fraction of free-air natural convection the
  /// buried box actually achieves.
  double enclosure_factor = 0.45;
  /// Radiative view factor from the box to cabin surroundings.
  double radiation_view = 0.6;
  /// PCB-to-case internal conductance (standoffs + internal air). [W/K]
  double internal_conductance = 1.25;

  // Heat-pipe spreading stage (components -> box edge): two pipes.
  int heat_pipe_count = 2;
  double hp_saddle_resistance = 0.10;  ///< evaporator & condenser saddles, each pipe [K/W]

  // Interface joints along the path (PCB->HP, HP->edge, edge->LHP saddle).
  tim::TimMaterial joint_tim = tim::conventional_grease();
  double joint_area = 6e-4;       ///< per joint [m^2]
  int joint_count = 3;
  double joint_pressure = 0.3e6;  ///< clamp pressure [Pa]

  // Loop heat pipes (two, ammonia).
  twophase::LhpDesign lhp = default_lhp();
  int lhp_count = 2;
  double lhp_line_run = 0.8;      ///< line length used for tilt elevation [m]

  SeatStructure seat;

  static twophase::LhpDesign default_lhp();
};

enum class SebCooling { NaturalOnly, HeatPipesAndLhp };

/// Transient warm-up trace of the SEB after a power step.
struct SebTransient {
  numeric::Vector times;         ///< [s]
  numeric::Vector t_pcb;         ///< [K]
  double steady_dt = 0.0;        ///< final dt_pcb_air [K]
  double time_to_90pct = 0.0;    ///< time to 90 % of the steady rise [s]
};

struct SebOperatingPoint {
  double power = 0.0;                ///< total SEB dissipation [W]
  double t_pcb = 0.0;                ///< [K]
  double t_case = 0.0;               ///< [K]
  double t_seat_attachment = 0.0;    ///< [K]
  double dt_pcb_air = 0.0;           ///< the Fig. 10 ordinate [K]
  double q_lhp_path = 0.0;           ///< heat carried by the LHP chain [W]
  double q_natural_path = 0.0;       ///< heat leaving through the box skin [W]
  bool lhp_within_capillary = true;
  double lhp_capillary_margin = 0.0; ///< min over the LHPs [Pa]
};

class SebModel {
 public:
  explicit SebModel(SebDesign design);

  /// Solve the steady operating point.
  /// `tilt_deg` tilts the seat: the LHP sees an adverse elevation
  /// sin(tilt) * line_run and a small conductance penalty.
  SebOperatingPoint solve(double power_w, double t_cabin_k, SebCooling mode,
                          double tilt_deg = 0.0) const;

  /// Power at which dt_pcb_air reaches `dt_target` (the paper's capability
  /// metric at constant PCB temperature, ~60 K). Bisection over power.
  double capability_at_dt(double dt_target, double t_cabin_k, SebCooling mode,
                          double tilt_deg = 0.0, double power_max = 400.0) const;

  /// Warm-up transient from a cold start at cabin temperature after a power
  /// step (implicit-Euler network transient with the assembly's thermal
  /// masses). `duration_s` of simulated time at step `dt_s`.
  SebTransient warmup(double power_w, double t_cabin_k, SebCooling mode,
                      double tilt_deg = 0.0, double duration_s = 7200.0,
                      double dt_s = 20.0) const;

  const SebDesign& design() const { return design_; }
  /// Heat-pipe stage total resistance at operating temperature. [K/W]
  double heat_pipe_stage_resistance() const;
  /// All TIM joints in series. [K/W]
  double joint_stage_resistance() const;

 private:
  /// Box-skin conductance (natural convection + radiation) at given temps.
  double box_skin_conductance(double t_case, double t_air) const;
  /// Seat rod fin conductance at given attachment / air temperatures.
  double seat_sink_conductance(double t_attach, double t_air) const;

  SebDesign design_;
  twophase::LoopHeatPipe lhp_;
};

}  // namespace aeropack::core
