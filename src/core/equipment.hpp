// Equipment description model: the component / PCB / module / rack hierarchy
// the paper's three simulation levels operate on (Fig. 4), plus the
// environmental specification the packaging design must satisfy.
#pragma once

#include <string>
#include <vector>

#include "materials/solid.hpp"
#include "reliability/mtbf.hpp"

namespace aeropack::core {

/// One dissipating component on a PCB.
struct Component {
  std::string reference;              ///< "U12"
  double power = 0.0;                 ///< [W]
  double footprint_area = 1e-4;       ///< case footprint [m^2]
  double theta_jc = 2.0;              ///< junction-to-case resistance [K/W]
  double junction_limit = 398.15;     ///< [K] (125 C per the paper)
  double x = 0.0, y = 0.0;            ///< position on the board [m]
  reliability::PartType part_type = reliability::PartType::AnalogIc;
  reliability::Quality quality = reliability::Quality::FullMil;
  int count = 1;

  /// Heat flux through the footprint. [W/m^2]
  double flux() const { return power / footprint_area; }
};

/// One PCB inside a module.
struct Board {
  std::string name;
  double length = 0.20, width = 0.15;   ///< [m]
  materials::PcbStackup stackup;
  /// Bonded aluminum thermal-drain core thickness (the paper's Level-2
  /// "specific drains" lever); 0 = no drain. [m]
  double drain_thickness = 0.0;
  std::vector<Component> components;
  double smeared_component_mass = 3.0;  ///< non-structural mass [kg/m^2]

  double total_power() const;
  double area() const { return length * width; }
};

/// A line-replaceable module (one or more boards in a shell).
struct Module {
  std::string name;
  std::vector<Board> boards;
  double shell_mass = 0.5;  ///< [kg]

  double total_power() const;
};

/// The equipment: modules in a rack/chassis envelope.
struct Equipment {
  std::string name;
  std::vector<Module> modules;
  double length = 0.35, width = 0.25, height = 0.20;  ///< envelope [m]
  double chassis_mass = 2.0;                          ///< [kg]
  materials::SolidMaterial chassis = materials::aluminum_6061();

  double total_power() const;
  double surface_area() const;
  /// Bill of materials for reliability rollup (junction temps to be filled
  /// by the Level-3 thermal analysis).
  std::vector<reliability::Part> bill_of_materials(double default_junction_k) const;
};

/// Environmental / performance specification (the "SPECIFICATION ANALYSIS"
/// box of the paper's Fig. 1).
struct Specification {
  double ambient_temperature = 328.15;  ///< worst hot case [K] (55 C)
  double ambient_cold = 248.15;         ///< worst cold case [K] (-25 C)
  double altitude = 2400.0;             ///< pressure altitude [m]
  double junction_limit = 398.15;       ///< [K] (125 C)
  double local_ambient_limit = 358.15;  ///< [K] (85 C component ambient)
  double mtbf_target_hours = 40000.0;   ///< the paper's typical figure
  double linear_acceleration_g = 9.0;   ///< qualification level
  double vibration_duration_s = 10800.0;///< 3 h endurance random vibration
  double thermal_shock_low = 228.15;    ///< [K] (-45 C)
  double thermal_shock_high = 328.15;   ///< [K] (+55 C)
  double thermal_shock_rate = 5.0;      ///< [K/min]
  bool forced_air_available = true;     ///< is the platform ECS reachable?
  reliability::Environment environment = reliability::Environment::AirborneInhabitedCargo;
};

}  // namespace aeropack::core
