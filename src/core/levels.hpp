// The paper's three thermal simulation levels (Fig. 4):
//   Level 1 — equipment: rack external constraints only, boards as
//             volumetric sources; selects the cooling technology.
//   Level 2 — PCB: boards as plates with dissipative surface patches;
//             optimizes copper layers / drains / wedge locks.
//   Level 3 — component: junction temperature per part, feeding the safety
//             and reliability (MTBF) calculations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/cooling_selection.hpp"
#include "core/equipment.hpp"
#include "reliability/mtbf.hpp"

namespace aeropack::core {

struct Level1Result {
  double case_temperature = 0.0;      ///< [K]
  double internal_air_temperature = 0.0;  ///< [K]
  double ua_case_to_ambient = 0.0;    ///< linearized [W/K]
  bool within_limits = false;
  std::size_t node_count = 0;         ///< model cost indicator
};

struct Level2BoardResult {
  std::string board;
  double max_temperature = 0.0;       ///< [K]
  double mean_temperature = 0.0;
  std::vector<double> component_local_temperature;  ///< board temp under each part [K]
  std::size_t cell_count = 0;
  double energy_residual = 0.0;       ///< [W]
};

struct Level3ComponentResult {
  std::string reference;
  double junction_temperature = 0.0;  ///< [K]
  double margin = 0.0;                ///< limit - junction [K]
  bool within_limit = false;
};

struct ThermalLevelsResult {
  Level1Result level1;
  std::vector<Level2BoardResult> level2;
  std::vector<Level3ComponentResult> level3;
  reliability::MtbfReport mtbf;
  bool mtbf_met = false;
  double worst_junction = 0.0;        ///< [K]
};

/// Level-1 lumped model with the chosen technology's case-to-ambient
/// conductance.
Level1Result run_level1(const Equipment& eq, const Specification& spec,
                        CoolingTechnology technology);

/// Level-2 finite-volume board model. `board_ambient` is the local air /
/// wall temperature from Level 1. `mesh` cells along the board's long edge.
Level2BoardResult run_level2(const Board& board, const Specification& spec,
                             CoolingTechnology technology, double board_ambient,
                             std::size_t mesh = 24);

/// Level-3 component junction temperatures from the Level-2 field plus
/// spreading / attach resistances, with the MTBF rollup.
ThermalLevelsResult run_thermal_levels(const Equipment& eq, const Specification& spec,
                                       CoolingTechnology technology, std::size_t mesh = 24);

}  // namespace aeropack::core
