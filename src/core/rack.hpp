// ARINC-style rack model (the Fig. 6 substrate): modules side by side fed
// from a shared plenum whose blower delivers the standard 220 kg/h/kW
// allocation for the rack's *design* power. Each module's channel gets a
// flow share proportional to its free area; per-module exhaust and
// component-surface temperatures come from the card-channel model, so
// loading one slot beyond its generation shows up as that slot running hot
// while the others stay fine — the practical failure mode of growing module
// power inside an existing rack.
#pragma once

#include <string>
#include <vector>

#include "thermal/forced_air.hpp"

namespace aeropack::core {

struct RackSlot {
  std::string name;
  double power = 10.0;           ///< [W]
  /// Worst surface flux seen by the air film, after in-board spreading
  /// (roughly power / wetted card area times a concentration factor).
  double peak_flux = 700.0;      ///< [W/m^2]
  thermal::CardChannel channel;  ///< geometry of this slot's air gap
};

struct RackDesign {
  std::vector<RackSlot> slots;
  double design_power = 0.0;     ///< power the plenum/blower was sized for [W]
                                 ///< (0 = size for the current total)
  double inlet_temperature = 313.15;  ///< [K]
  double pressure = 101325.0;    ///< [Pa]

  double total_power() const;
  void validate() const;
};

struct SlotResult {
  std::string name;
  double velocity = 0.0;             ///< channel velocity [m/s]
  double exhaust_temperature = 0.0;  ///< [K]
  double surface_temperature = 0.0;  ///< worst component surface [K]
  bool feasible = false;
};

struct RackResult {
  std::vector<SlotResult> slots;
  double mixed_exhaust = 0.0;  ///< plenum exhaust after mixing [K]
  bool all_feasible = false;
};

/// Solve the rack: split the blower flow across slots by free area, run the
/// card-channel model per slot against `surface_limit_k`.
RackResult solve_rack(const RackDesign& rack, double surface_limit_k);

}  // namespace aeropack::core
