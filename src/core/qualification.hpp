// Qualification campaign simulator. The paper qualifies the COSEE seats
// with: linear acceleration (up to 9 g, 3 minutes per axis), random
// vibration per DO-160 curve C1, climatic performance between -25 and
// +55 C, and thermal shock -45/+55 C at 5 C/min — "the seats have been
// submitted to all the different tests without damage".
//
// Each test is evaluated analytically against the equipment-under-test
// abstraction below, producing pass/fail and a margin.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fem/random_vibration.hpp"

namespace aeropack::core {

/// Abstraction of the unit being qualified.
struct EquipmentUnderTest {
  std::string name;
  double mass = 5.0;                   ///< supported mass [kg]
  double fundamental_frequency = 120.0;///< first structural mode [Hz]
  double damping_ratio = 0.04;
  double mount_section_modulus = 2e-7; ///< weakest bracket section [m^3]
  double mount_length = 0.05;          ///< load arm of that bracket [m]
  double mount_yield = 276e6;          ///< bracket material yield [Pa]

  // PCB fatigue (Steinberg) parameters.
  double board_edge = 0.20;            ///< [m]
  double board_thickness = 1.6e-3;     ///< [m]
  double critical_component_length = 0.03;  ///< largest package [m]
  double component_position_factor = 1.0;
  double component_packaging_factor = 1.0;

  // Thermal behaviour: worst junction temperature [K] for a cabin/bay
  // ambient [K]. Supplied by the thermal levels or the SEB model.
  std::function<double(double)> worst_junction_at_ambient;
  double junction_limit = 398.15;      ///< [K]
  double minimum_operating = 233.15;   ///< [K] (-40 C cold start)

  // Thermal-shock attach sensitivity.
  double attach_delta_t_fraction = 0.8;  ///< fraction of chamber dT seen by joints
};

struct TestResult {
  std::string test;
  bool passed = false;
  double margin = 0.0;  ///< >= 1 passes (capability / demand)
  std::string detail;
};

struct CampaignOptions {
  double acceleration_g = 9.0;
  double acceleration_duration_s = 180.0;  ///< per axis
  fem::AsdCurve vibration_curve = fem::do160_curve_c1();
  double vibration_duration_s = 10800.0;   ///< 3 h endurance
  double climatic_low = 248.15;            ///< [K] (-25 C)
  double climatic_high = 328.15;           ///< [K] (+55 C)
  double shock_low = 228.15;               ///< [K] (-45 C)
  double shock_high = 328.15;              ///< [K] (+55 C)
  double shock_rate_k_per_min = 5.0;
  int shock_cycles = 50;
  double safety_factor = 1.25;
};

struct CampaignReport {
  std::vector<TestResult> results;
  bool all_passed = false;
};

TestResult run_linear_acceleration(const EquipmentUnderTest& eut, const CampaignOptions& opts);
TestResult run_random_vibration(const EquipmentUnderTest& eut, const CampaignOptions& opts);
TestResult run_climatic(const EquipmentUnderTest& eut, const CampaignOptions& opts);
TestResult run_thermal_shock(const EquipmentUnderTest& eut, const CampaignOptions& opts);

CampaignReport run_campaign(const EquipmentUnderTest& eut, const CampaignOptions& opts = {});

}  // namespace aeropack::core
