// Level-1 cooling-technology selection (the paper's Fig. 4 "first algebraic
// or numerical approach [that] helps us select the most appropriate cooling
// technologies ... given a level of power in the package and the available
// cooling options", trading the Fig. 5 techniques).
#pragma once

#include <string>
#include <vector>

#include "core/equipment.hpp"

namespace aeropack::core {

/// The cooling principles of the paper's Fig. 5 plus the Section-IV
/// two-phase route.
enum class CoolingTechnology {
  FreeConvection,     ///< radiation + natural convection on the case
  DirectAirFlow,      ///< ARINC 600 forced air through the cards
  AirFlowAround,      ///< forced air over a sealed module shell
  ConductionCooled,   ///< cards drained to rack cold walls
  LiquidFlowThrough,  ///< cold plate with liquid coolant
  TwoPhase,           ///< heat pipes / LHP to a remote sink
};

std::string to_string(CoolingTechnology t);

struct TechnologyAssessment {
  CoolingTechnology technology;
  double max_power = 0.0;       ///< capability for this equipment [W]
  bool feasible = false;        ///< capability >= demand, and available
  bool available = false;       ///< platform provides the required service
  int complexity = 0;           ///< 1 (simple) .. 5 (complex/costly)
  std::string note;
};

struct CoolingSelection {
  std::vector<TechnologyAssessment> assessments;   ///< all candidates
  CoolingTechnology selected = CoolingTechnology::FreeConvection;
  bool any_feasible = false;
};

/// Estimate each technology's power capability for the equipment envelope in
/// the specified environment, and pick the simplest feasible one (the
/// paper's design doctrine: "direct air cooling ... is simple to implement"
/// — until hot spots or power exceed it).
CoolingSelection select_cooling(const Equipment& eq, const Specification& spec);

/// Capability of a single technology [W] for the given equipment/spec, at
/// the case-to-ambient budget implied by keeping component ambient under
/// spec.local_ambient_limit.
double technology_capability(CoolingTechnology t, const Equipment& eq,
                             const Specification& spec);

}  // namespace aeropack::core
