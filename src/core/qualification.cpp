#include "core/qualification.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/units.hpp"
#include "fem/fatigue.hpp"
#include "fem/shock.hpp"
#include "fem/sdof.hpp"
#include "reliability/thermal_cycling.hpp"

namespace aeropack::core {

namespace {
std::string format_margin(double margin) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << margin;
  return os.str();
}
}  // namespace

TestResult run_linear_acceleration(const EquipmentUnderTest& eut, const CampaignOptions& opts) {
  TestResult r;
  r.test = "linear acceleration " + format_margin(opts.acceleration_g) + " g";
  const double stress = fem::quasi_static_cantilever_stress(
      opts.acceleration_g, eut.mass, eut.mount_length, eut.mount_section_modulus);
  r.margin = eut.mount_yield / (stress * opts.safety_factor);
  r.passed = r.margin >= 1.0;
  r.detail = "bracket stress " + format_margin(stress / 1e6) + " MPa vs yield " +
             format_margin(eut.mount_yield / 1e6) + " MPa";
  return r;
}

TestResult run_random_vibration(const EquipmentUnderTest& eut, const CampaignOptions& opts) {
  TestResult r;
  r.test = "random vibration (" + opts.vibration_curve.name() + ")";
  const double fn = eut.fundamental_frequency;
  const double asd = (fn >= opts.vibration_curve.f_min() && fn <= opts.vibration_curve.f_max())
                         ? opts.vibration_curve(fn)
                         : 0.0;
  const double grms = fem::miles_grms(fn, eut.damping_ratio, asd);
  const auto assess = fem::steinberg_assess(
      eut.board_edge, eut.board_thickness, eut.critical_component_length,
      eut.component_position_factor, eut.component_packaging_factor, fn, grms);
  // Margin combines the Steinberg deflection ratio with the endurance check:
  // life at the test level must cover the test duration.
  const double life_margin =
      assess.life_hours_at_20m_cycles * 3600.0 / std::max(opts.vibration_duration_s, 1.0);
  r.margin = std::min(assess.margin, life_margin);
  r.passed = r.margin >= 1.0;
  r.detail = "fn " + format_margin(fn) + " Hz, response " + format_margin(grms) +
             " grms, deflection margin " + format_margin(assess.margin);
  return r;
}

TestResult run_climatic(const EquipmentUnderTest& eut, const CampaignOptions& opts) {
  TestResult r;
  r.test = "climatic " + format_margin(kelvin_to_celsius(opts.climatic_low)) + " / +" +
           format_margin(kelvin_to_celsius(opts.climatic_high)) + " C";
  if (!eut.worst_junction_at_ambient)
    throw std::invalid_argument("run_climatic: missing thermal model callback");
  const double tj_hot = eut.worst_junction_at_ambient(opts.climatic_high);
  const double hot_budget = eut.junction_limit - opts.climatic_high;
  const double hot_rise = tj_hot - opts.climatic_high;
  const double hot_margin = (hot_rise > 0.0) ? hot_budget / hot_rise : 10.0;
  const double cold_margin = (opts.climatic_low >= eut.minimum_operating) ? 2.0 : 0.5;
  r.margin = std::min(hot_margin, cold_margin);
  r.passed = r.margin >= 1.0;
  r.detail = "worst junction " + format_margin(kelvin_to_celsius(tj_hot)) + " C at +" +
             format_margin(kelvin_to_celsius(opts.climatic_high)) + " C ambient (limit " +
             format_margin(kelvin_to_celsius(eut.junction_limit)) + " C)";
  return r;
}

TestResult run_thermal_shock(const EquipmentUnderTest& eut, const CampaignOptions& opts) {
  TestResult r;
  r.test = "thermal shock " + format_margin(kelvin_to_celsius(opts.shock_low)) + " / +" +
           format_margin(kelvin_to_celsius(opts.shock_high)) + " C at " +
           format_margin(opts.shock_rate_k_per_min) + " C/min";
  const double chamber_dt = opts.shock_high - opts.shock_low;
  const double attach_dt = eut.attach_delta_t_fraction * chamber_dt;
  const double cycles_capable = reliability::coffin_manson_cycles(attach_dt);
  r.margin = cycles_capable / (static_cast<double>(opts.shock_cycles) * opts.safety_factor);
  r.passed = r.margin >= 1.0;
  r.detail = "attach dT " + format_margin(attach_dt) + " K, capability " +
             format_margin(cycles_capable) + " cycles vs " +
             format_margin(static_cast<double>(opts.shock_cycles)) + " applied";
  return r;
}

CampaignReport run_campaign(const EquipmentUnderTest& eut, const CampaignOptions& opts) {
  CampaignReport rpt;
  rpt.results.push_back(run_linear_acceleration(eut, opts));
  rpt.results.push_back(run_random_vibration(eut, opts));
  rpt.results.push_back(run_climatic(eut, opts));
  rpt.results.push_back(run_thermal_shock(eut, opts));
  rpt.all_passed = true;
  for (const auto& t : rpt.results) rpt.all_passed = rpt.all_passed && t.passed;
  return rpt;
}

}  // namespace aeropack::core
