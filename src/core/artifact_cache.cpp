#include "core/artifact_cache.hpp"

#include <algorithm>
#include <mutex>

#include "obs/registry.hpp"

namespace aeropack::core {

namespace {

// Counters land in whichever registry the calling thread has bound (each
// scenario worker binds its context's registry via ExecutionContext::Use),
// so per-scenario reports see per-scenario cache traffic.
void bump(const char* name, std::uint64_t n = 1) {
  if (obs::enabled()) obs::current().counter(name).add(n);
}

}  // namespace

ArtifactCache::ArtifactCache(const ArtifactCacheOptions& options) : options_(options) {
  const std::size_t n = std::max<std::size_t>(1, options_.shards);
  options_.shards = n;
  shard_capacity_ = options_.capacity_bytes / n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ArtifactCache::~ArtifactCache() = default;

ArtifactCache::Shard& ArtifactCache::shard_for(std::uint64_t key) {
  // The low bits of an FNV hash are well mixed; fold high into low anyway
  // so pathological keys still spread.
  const std::uint64_t folded = key ^ (key >> 32);
  return *shards_[folded % shards_.size()];
}

std::shared_ptr<const void> ArtifactCache::find_erased(std::uint64_t key,
                                                       const std::type_info& type) {
  Shard& shard = shard_for(key);
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end() && *it->second->type == type) {
      Entry& e = *it->second;
      e.hits.fetch_add(1, std::memory_order_relaxed);
      e.last_access.store(tick_.fetch_add(1, std::memory_order_relaxed),
                          std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      bump("svc.cache.hits");
      return e.value;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  bump("svc.cache.misses");
  return nullptr;
}

void ArtifactCache::insert_erased(std::uint64_t key, std::shared_ptr<const void> value,
                                  const std::type_info& type, std::size_t cost_bytes) {
  if (!value || cost_bytes > shard_capacity_) return;  // never fits; drop
  Shard& shard = shard_for(key);
  std::unique_lock lock(shard.mutex);
  if (shard.entries.count(key)) return;  // first writer wins
  if (shard.bytes + cost_bytes > shard_capacity_)
    evict_locked(shard, shard_capacity_ - cost_bytes);
  auto entry = std::make_unique<Entry>();
  entry->value = std::move(value);
  entry->type = &type;
  entry->cost_bytes = cost_bytes;
  entry->last_access.store(tick_.fetch_add(1, std::memory_order_relaxed),
                           std::memory_order_relaxed);
  shard.bytes += cost_bytes;
  shard.entries.emplace(key, std::move(entry));
  insertions_.fetch_add(1, std::memory_order_relaxed);
  bump("svc.cache.insertions");
}

void ArtifactCache::evict_locked(Shard& shard, std::size_t budget) {
  // Cost-aware LFU: drop lowest (1 + hits) / cost first — cheap-to-rebuild
  // or rarely-reused entries go before hot expensive factorizations. Ties
  // (same utility) drop the least recently touched entry.
  struct Victim {
    std::uint64_t key;
    double utility;
    std::uint64_t last_access;
  };
  std::vector<Victim> order;
  order.reserve(shard.entries.size());
  for (const auto& [key, entry] : shard.entries) {
    const double cost = static_cast<double>(std::max<std::size_t>(1, entry->cost_bytes));
    const double utility =
        (1.0 + static_cast<double>(entry->hits.load(std::memory_order_relaxed))) / cost;
    order.push_back({key, utility, entry->last_access.load(std::memory_order_relaxed)});
  }
  std::sort(order.begin(), order.end(), [](const Victim& a, const Victim& b) {
    if (a.utility != b.utility) return a.utility < b.utility;
    return a.last_access < b.last_access;
  });
  for (const Victim& v : order) {
    if (shard.bytes <= budget) break;
    auto it = shard.entries.find(v.key);
    shard.bytes -= it->second->cost_bytes;
    shard.entries.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    bump("svc.cache.evictions");
  }
}

ArtifactCacheStats ArtifactCache::stats() const {
  ArtifactCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    s.entries += shard->entries.size();
    s.bytes += shard->bytes;
  }
  return s;
}

}  // namespace aeropack::core
