#include "core/derating.hpp"

#include <stdexcept>

namespace aeropack::core {

DeratingPolicy DeratingPolicy::navmat() {
  DeratingPolicy p;
  p.name = "NAVMAT-style";
  p.junction_margin = 20.0;
  p.power_fraction = 0.6;
  p.flux_limit = 10e4;
  return p;
}

DeratingPolicy DeratingPolicy::commercial() {
  DeratingPolicy p;
  p.name = "commercial";
  p.junction_margin = 10.0;
  p.power_fraction = 0.85;
  p.flux_limit = 25e4;
  return p;
}

DeratingReport check_derating(const Equipment& eq, const DeratingPolicy& policy,
                              const std::vector<double>& junction_temperatures,
                              double junction_limit_k,
                              const std::vector<double>& rated_powers) {
  DeratingReport rpt;
  std::size_t idx = 0;
  for (const Module& m : eq.modules)
    for (const Board& b : m.boards)
      for (const Component& c : b.components) {
        if (idx >= junction_temperatures.size())
          throw std::invalid_argument("check_derating: junction vector too short");
        const std::string ref = m.name + "/" + b.name + "/" + c.reference;

        // Rule 1: junction margin.
        ++rpt.checks;
        const double tj = junction_temperatures[idx];
        const double tj_allowed = junction_limit_k - policy.junction_margin;
        if (tj > tj_allowed)
          rpt.findings.push_back({ref, "junction margin", tj, tj_allowed, true});

        // Rule 2: power derating (only when a rating is supplied).
        if (idx < rated_powers.size() && rated_powers[idx] > 0.0) {
          ++rpt.checks;
          const double allowed = policy.power_fraction * rated_powers[idx];
          if (c.power > allowed)
            rpt.findings.push_back({ref, "power derating", c.power, allowed, true});
        }

        // Rule 3: footprint flux.
        ++rpt.checks;
        if (c.flux() > policy.flux_limit)
          rpt.findings.push_back({ref, "heat-flux cap", c.flux(), policy.flux_limit, true});

        ++idx;
      }
  if (idx != junction_temperatures.size())
    throw std::invalid_argument("check_derating: junction vector length mismatch");
  rpt.compliant = rpt.findings.empty();
  return rpt;
}

}  // namespace aeropack::core
