#include "core/equipment.hpp"

namespace aeropack::core {

double Board::total_power() const {
  double p = 0.0;
  for (const Component& c : components) p += c.power * c.count;
  return p;
}

double Module::total_power() const {
  double p = 0.0;
  for (const Board& b : boards) p += b.total_power();
  return p;
}

double Equipment::total_power() const {
  double p = 0.0;
  for (const Module& m : modules) p += m.total_power();
  return p;
}

double Equipment::surface_area() const {
  return 2.0 * (length * width + length * height + width * height);
}

std::vector<reliability::Part> Equipment::bill_of_materials(double default_junction_k) const {
  std::vector<reliability::Part> bom;
  for (const Module& m : modules)
    for (const Board& b : m.boards)
      for (const Component& c : b.components) {
        reliability::Part p;
        p.reference = m.name + "/" + b.name + "/" + c.reference;
        p.type = c.part_type;
        p.count = c.count;
        p.junction_temperature = default_junction_k;
        p.quality = c.quality;
        bom.push_back(p);
      }
  return bom;
}

}  // namespace aeropack::core
