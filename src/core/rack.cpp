#include "core/rack.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "materials/air.hpp"
#include "thermal/convection.hpp"

namespace aeropack::core {

double RackDesign::total_power() const {
  double p = 0.0;
  for (const RackSlot& s : slots) p += s.power;
  return p;
}

void RackDesign::validate() const {
  if (slots.empty()) throw std::invalid_argument("RackDesign: no slots");
  for (const RackSlot& s : slots) {
    if (s.power < 0.0 || s.peak_flux < 0.0)
      throw std::invalid_argument("RackDesign: negative power/flux in slot " + s.name);
    if (s.channel.flow_area() <= 0.0)
      throw std::invalid_argument("RackDesign: degenerate channel in slot " + s.name);
  }
}

RackResult solve_rack(const RackDesign& rack, double surface_limit_k) {
  rack.validate();
  const double sized_for =
      (rack.design_power > 0.0) ? rack.design_power : rack.total_power();

  // Blower mass flow per the ARINC budget at the *design* power.
  thermal::ArincAirSupply supply;
  supply.inlet_temperature = rack.inlet_temperature;
  supply.pressure = rack.pressure;
  const double mdot_total = supply.mass_flow(sized_for);

  // Split by free (flow) area: parallel channels off one plenum share the
  // same pressure drop; for identical channel character that reduces to an
  // area split.
  double area_total = 0.0;
  for (const RackSlot& s : rack.slots) area_total += s.channel.flow_area();

  const auto air = materials::air_at(rack.inlet_temperature, rack.pressure);

  RackResult out;
  out.all_feasible = true;
  double enthalpy_mix = 0.0;
  for (const RackSlot& s : rack.slots) {
    const double mdot = mdot_total * s.channel.flow_area() / area_total;
    SlotResult r;
    r.name = s.name;
    r.velocity = mdot / (air.density * s.channel.flow_area());
    const double rise = (mdot > 0.0) ? s.power / (mdot * air.specific_heat) : 1e9;
    r.exhaust_temperature = rack.inlet_temperature + rise;
    const double t_local = rack.inlet_temperature + 0.75 * rise;  // near-exit station
    const double h = thermal::h_forced_duct(r.velocity, s.channel.hydraulic_diameter(),
                                            t_local, rack.pressure);
    r.surface_temperature = t_local + ((h > 0.0) ? s.peak_flux / h : 1e9);
    r.feasible = r.surface_temperature <= surface_limit_k;
    out.all_feasible = out.all_feasible && r.feasible;
    enthalpy_mix += mdot * r.exhaust_temperature;
    out.slots.push_back(std::move(r));
  }
  out.mixed_exhaust = enthalpy_mix / mdot_total;
  return out;
}

}  // namespace aeropack::core
