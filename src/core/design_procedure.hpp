// The paper's Fig. 1 packaging design procedure: specification analysis
// feeds parallel mechanical and thermal design loops (simulation +
// experience), converging on a packaging design document. This module
// orchestrates the toolkit's analyses into that flow and renders the
// resulting report.
//
// It also implements the frequency allocation plan of the Ariane navigation
// unit case (Fig. 2): each subassembly owns a frequency band and its main
// resonant mode must land inside it (the power supply is specified
// "around 500 Hz").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cooling_selection.hpp"
#include "core/equipment.hpp"
#include "core/levels.hpp"
#include "core/qualification.hpp"
#include "fem/plate.hpp"
#include "fem/random_vibration.hpp"

namespace aeropack::core {

/// A frequency band assigned to one subassembly so that resonances of
/// neighbouring assemblies do not couple.
struct FrequencyBand {
  std::string owner;
  double lo_hz = 0.0;
  double hi_hz = 0.0;
};

class FrequencyAllocationPlan {
 public:
  /// Add a band; bands of different owners must not overlap.
  void allocate(std::string owner, double lo_hz, double hi_hz);
  /// The band owned by `owner`; throws std::out_of_range if absent.
  const FrequencyBand& band(const std::string& owner) const;
  /// Does `frequency` fall inside the owner's band?
  bool complies(const std::string& owner, double frequency_hz) const;
  const std::vector<FrequencyBand>& bands() const { return bands_; }

 private:
  std::vector<FrequencyBand> bands_;
};

struct MechanicalDesignResult {
  double fundamental_frequency = 0.0;   ///< [Hz]
  bool frequency_allocated = false;     ///< inside the owner's band
  double response_grms = 0.0;           ///< random response at the board
  double steinberg_margin = 0.0;
  bool fatigue_ok = false;
};

struct DesignReport {
  std::string equipment;
  CoolingSelection cooling;
  ThermalLevelsResult thermal;
  MechanicalDesignResult mechanical;
  CampaignReport qualification;
  bool accepted = false;

  /// Render the "packaging design document" as plain text.
  std::string to_text() const;
};

struct DesignInputs {
  Equipment equipment;
  Specification spec;
  fem::PlateModel critical_board;        ///< the board whose mode is allocated
  std::string board_band_owner = "board";
  FrequencyAllocationPlan plan;
  fem::AsdCurve vibration = fem::do160_curve_c1();
  double damping = 0.04;
  double critical_component_length = 0.03;  ///< for Steinberg [m]
  std::size_t thermal_mesh = 16;
};

/// Run the full Fig.-1 procedure: cooling selection (Level 1), thermal
/// levels 2-3 + MTBF, mechanical modal placement + random-vibration fatigue,
/// then the qualification campaign.
DesignReport run_design_procedure(const DesignInputs& inputs);

}  // namespace aeropack::core
