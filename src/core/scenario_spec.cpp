#include "core/scenario_spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "numeric/hashing.hpp"

namespace aeropack::core {

namespace {

constexpr std::string_view kMagic = "scenario/1";

void hash_map(numeric::StructuralHasher& h, const std::map<std::string, double>& m) {
  h.add(static_cast<std::uint64_t>(m.size()));
  for (const auto& [key, value] : m) {  // std::map: deterministic order
    h.add(std::string_view(key));
    h.add(value);
  }
}

// '%', '|' and '=' carry structure in the wire form; escape them (and
// control characters) as %XX so arbitrary names round-trip.
void append_escaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    if (c == '%' || c == '|' || c == '=' || c < 0x20) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size())
        throw std::invalid_argument("ScenarioSpec::deserialize: truncated escape");
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi < 0 || lo < 0)
        throw std::invalid_argument("ScenarioSpec::deserialize: bad escape digit");
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_double(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("ScenarioSpec::deserialize: empty value");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size())
    throw std::invalid_argument("ScenarioSpec::deserialize: unparsable value '" + s + "'");
  return v;
}

void append_map(std::string& out, char tag, const std::map<std::string, double>& m) {
  for (const auto& [key, value] : m) {
    out += '|';
    out += tag;
    out += ':';
    append_escaped(out, key);
    out += '=';
    out += format_double(value);
  }
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

std::uint64_t ScenarioSpec::content_hash() const {
  numeric::StructuralHasher h;
  h.add(std::string_view("core.scenario_spec"));
  h.add(std::string_view(graph));
  hash_map(h, params);
  hash_map(h, loads);
  hash_map(h, boundaries);
  return h.value();
}

std::uint64_t ScenarioSpec::structural_hash() const {
  numeric::StructuralHasher h;
  h.add(std::string_view("core.scenario_spec.structure"));
  h.add(std::string_view(graph));
  hash_map(h, params);
  return h.value();
}

std::string ScenarioSpec::serialize() const {
  std::string out(kMagic);
  out += "|name=";
  append_escaped(out, name);
  out += "|graph=";
  append_escaped(out, graph);
  append_map(out, 'p', params);
  append_map(out, 'l', loads);
  append_map(out, 'b', boundaries);
  return out;
}

ScenarioSpec ScenarioSpec::deserialize(const std::string& text) {
  const auto fields = split(text, '|');
  if (fields.empty() || fields[0] != kMagic)
    throw std::invalid_argument("ScenarioSpec::deserialize: bad magic (want 'scenario/1')");
  ScenarioSpec spec;
  bool saw_name = false, saw_graph = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string_view f = fields[i];
    const std::size_t eq = f.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("ScenarioSpec::deserialize: field without '='");
    const std::string_view key = f.substr(0, eq);
    const std::string_view raw = f.substr(eq + 1);
    if (key == "name") {
      if (saw_name) throw std::invalid_argument("ScenarioSpec::deserialize: duplicate name");
      spec.name = unescape(raw);
      saw_name = true;
    } else if (key == "graph") {
      if (saw_graph) throw std::invalid_argument("ScenarioSpec::deserialize: duplicate graph");
      spec.graph = unescape(raw);
      saw_graph = true;
    } else if (key.size() >= 2 && key[1] == ':' &&
               (key[0] == 'p' || key[0] == 'l' || key[0] == 'b')) {
      auto& m = key[0] == 'p' ? spec.params : key[0] == 'l' ? spec.loads : spec.boundaries;
      const std::string mkey = unescape(key.substr(2));
      if (!m.emplace(mkey, parse_double(unescape(raw))).second)
        throw std::invalid_argument("ScenarioSpec::deserialize: duplicate key '" + mkey + "'");
    } else {
      throw std::invalid_argument("ScenarioSpec::deserialize: unknown field tag");
    }
  }
  if (!saw_name || !saw_graph)
    throw std::invalid_argument("ScenarioSpec::deserialize: missing name or graph");
  return spec;
}

}  // namespace aeropack::core
