#include "core/seb.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/units.hpp"
#include "numeric/rootfind.hpp"
#include "thermal/convection.hpp"
#include "thermal/fins.hpp"
#include "thermal/network.hpp"

namespace aeropack::core {

twophase::LhpDesign SebDesign::default_lhp() {
  twophase::LhpDesign d;
  d.wick_pore_radius = 1.2e-6;
  d.wick_permeability = 4e-14;
  d.wick_thickness = 5e-3;
  d.wick_area = 15e-4;
  d.evaporator_resistance = 0.12;
  d.vapor_line_length = 0.8;
  d.vapor_line_diameter = 3e-3;
  d.liquid_line_length = 0.8;
  d.liquid_line_diameter = 2e-3;
  d.condenser_length = 0.5;
  d.condenser_ua = 7.0;
  d.condenser_full_power = 40.0;
  d.condenser_open_fraction_min = 0.15;
  return d;
}

SebModel::SebModel(SebDesign design)
    : design_(std::move(design)), lhp_(materials::ammonia(), design_.lhp) {
  if (design_.heat_pipe_count < 1 || design_.lhp_count < 1 || design_.joint_count < 0)
    throw std::invalid_argument("SebModel: counts must be positive");
}

double SebModel::heat_pipe_stage_resistance() const {
  // Two copper/water sintered pipes from the component area to the box edge.
  twophase::HeatPipeGeometry g;
  g.outer_diameter = 6e-3;
  g.wall_thickness = 0.5e-3;
  g.wick_thickness = 0.75e-3;
  g.evaporator_length = 80e-3;
  g.adiabatic_length = 120e-3;
  g.condenser_length = 100e-3;
  const twophase::HeatPipe pipe(materials::water(), g, twophase::Wick::sintered_powder(),
                                materials::copper());
  const double per_pipe = pipe.thermal_resistance(330.0) + design_.hp_saddle_resistance;
  return per_pipe / static_cast<double>(design_.heat_pipe_count);
}

double SebModel::joint_stage_resistance() const {
  if (design_.joint_count == 0) return 0.0;
  return static_cast<double>(design_.joint_count) *
         design_.joint_tim.joint_resistance(design_.joint_area, design_.joint_pressure);
}

double SebModel::box_skin_conductance(double t_case, double t_air) const {
  const double a_side = 2.0 * (design_.box_length + design_.box_width) * design_.box_height;
  const double a_flat = design_.box_length * design_.box_width;
  const double eps_eff = design_.box_emissivity * design_.radiation_view;
  const double lc_flat =
      design_.box_length * design_.box_width / (2.0 * (design_.box_length + design_.box_width));
  const double f = design_.enclosure_factor;

  const double dt_floor = std::max(std::fabs(t_case - t_air), 0.05);
  const double ts = t_air + dt_floor * ((t_case >= t_air) ? 1.0 : -1.0);
  const double h_v = f * thermal::h_natural_vertical_plate(ts, t_air, design_.box_height);
  const double h_up = f * thermal::h_natural_horizontal_up(ts, t_air, lc_flat);
  const double h_dn = f * thermal::h_natural_horizontal_down(ts, t_air, lc_flat);
  const double h_r = thermal::h_radiation(ts, t_air, eps_eff);
  return (h_v + h_r) * a_side + (h_up + h_r) * a_flat + (h_dn + h_r) * a_flat;
}

double SebModel::seat_sink_conductance(double t_attach, double t_air) const {
  const double dt_floor = std::max(std::fabs(t_attach - t_air), 0.05);
  const double ts = t_air + dt_floor * ((t_attach >= t_air) ? 1.0 : -1.0);
  const double h_c =
      thermal::h_natural_horizontal_cylinder(ts, t_air, design_.seat.rod_diameter);
  const double h_r = thermal::h_radiation(ts, t_air, design_.seat.material.emissivity);
  const double g_rod = thermal::rod_sink_conductance(
      h_c + h_r, design_.seat.rod_diameter, design_.seat.material.conductivity,
      design_.seat.rod_half_length, design_.seat.rod_half_length);
  // The condenser contact patch is rod surface: its circumferential /
  // axial spreading efficiency collapses with low-conductivity structure
  // (the CFRP seat case). Reference is the aluminum rod.
  const double k_ref = materials::aluminum_6061().conductivity;
  const double spread_eff =
      std::min(1.0, std::pow(design_.seat.material.conductivity / k_ref, 0.3));
  const double g_attach = (h_c + h_r) * design_.seat.attachment_area * spread_eff;
  return g_rod * static_cast<double>(design_.seat.rod_count) + g_attach;
}

SebOperatingPoint SebModel::solve(double power_w, double t_cabin_k, SebCooling mode,
                                  double tilt_deg) const {
  if (power_w < 0.0) throw std::invalid_argument("SebModel::solve: negative power");
  if (tilt_deg < 0.0 || tilt_deg > 60.0)
    throw std::invalid_argument("SebModel::solve: tilt outside the tested envelope");

  const double tilt_rad = tilt_deg * std::numbers::pi / 180.0;
  const double elevation = design_.lhp_line_run * std::sin(tilt_rad);

  thermal::ThermalNetwork net;
  const auto pcb = net.add_node("pcb");
  const auto box = net.add_node("case");
  const auto air = net.add_boundary("cabin air", t_cabin_k);
  net.add_conductor(pcb, box, design_.internal_conductance);
  net.add_nonlinear_conductor(
      box, air, [this](double ta, double tb) { return box_skin_conductance(ta, tb); });
  net.add_heat_load(pcb, power_w);

  thermal::NodeId edge = 0, attach = 0;
  double g_fixed = 0.0;
  if (mode == SebCooling::HeatPipesAndLhp) {
    edge = net.add_node("box edge");
    attach = net.add_node("seat attachment");
    g_fixed = 1.0 / (heat_pipe_stage_resistance() + joint_stage_resistance());
    net.add_conductor(pcb, edge, g_fixed);

    // Loop-heat-pipe pair: conductance from the power-dependent resistance
    // R(Q), solved implicitly from the local temperature drop. Adverse tilt
    // penalizes the evaporator (liquid redistribution against gravity),
    // scaled by the used fraction of the capillary budget.
    const int n_lhp = design_.lhp_count;
    const auto lhp_conductance = [this, n_lhp, elevation](double ta, double tb) {
      const double dt = std::fabs(ta - tb);
      const double t_ref = std::clamp(std::max(ta, tb), lhp_.fluid().t_min() + 1.0,
                                      lhp_.fluid().t_max() - 1.0);
      const auto budget0 = lhp_.pressure_budget(0.0, t_ref, elevation);
      const double tilt_penalty =
          1.0 + 8.0 * budget0.gravity / budget0.capillary_available;
      if (dt < 1e-6) {
        const double r0 = lhp_.thermal_resistance(0.0, t_ref) * tilt_penalty;
        return static_cast<double>(n_lhp) / r0;
      }
      // Fixed point: Q_each = dt / R(Q_each).
      double q_each = dt / (lhp_.thermal_resistance(10.0, t_ref) * tilt_penalty);
      for (int it = 0; it < 30; ++it) {
        const double r = lhp_.thermal_resistance(q_each, t_ref) * tilt_penalty;
        const double next = dt / r;
        if (std::fabs(next - q_each) < 1e-9 * (1.0 + next)) {
          q_each = next;
          break;
        }
        q_each = 0.5 * (q_each + next);
      }
      const double r_final = lhp_.thermal_resistance(q_each, t_ref) * tilt_penalty;
      return static_cast<double>(n_lhp) / r_final;
    };
    net.add_nonlinear_conductor(edge, attach, lhp_conductance);
    net.add_nonlinear_conductor(
        attach, air, [this](double ta, double tb) { return seat_sink_conductance(ta, tb); });
  }

  thermal::SteadyOptions opts;
  opts.max_picard_iterations = 400;
  opts.relaxation = 0.6;
  opts.tolerance = 1e-7;
  const auto sol = net.solve_steady(opts);

  SebOperatingPoint pt;
  pt.power = power_w;
  pt.t_pcb = sol.temperatures[pcb];
  pt.t_case = sol.temperatures[box];
  pt.dt_pcb_air = pt.t_pcb - t_cabin_k;
  if (mode == SebCooling::HeatPipesAndLhp) {
    pt.t_seat_attachment = sol.temperatures[attach];
    pt.q_lhp_path = g_fixed * (sol.temperatures[pcb] - sol.temperatures[edge]);
    pt.q_natural_path = power_w - pt.q_lhp_path;
    // Capillary check at the operating vapor temperature per LHP.
    const double q_each = pt.q_lhp_path / static_cast<double>(design_.lhp_count);
    const double t_ref = std::clamp(sol.temperatures[edge], lhp_.fluid().t_min() + 1.0,
                                    lhp_.fluid().t_max() - 1.0);
    const auto budget = lhp_.pressure_budget(std::max(q_each, 0.0), t_ref, elevation);
    pt.lhp_capillary_margin = budget.margin();
    pt.lhp_within_capillary = budget.margin() > 0.0;
  } else {
    pt.q_natural_path = power_w;
    pt.lhp_capillary_margin = 0.0;
  }
  return pt;
}

SebTransient SebModel::warmup(double power_w, double t_cabin_k, SebCooling mode,
                              double tilt_deg, double duration_s, double dt_s) const {
  if (power_w < 0.0) throw std::invalid_argument("SebModel::warmup: negative power");
  if (duration_s <= dt_s || dt_s <= 0.0)
    throw std::invalid_argument("SebModel::warmup: bad time span");

  const double tilt_rad = tilt_deg * std::numbers::pi / 180.0;
  const double elevation = design_.lhp_line_run * std::sin(tilt_rad);

  // Thermal masses: PCB + components, aluminum case, box-edge hardware, and
  // the seat rods (material dependent - CFRP stores less heat per kelvin).
  constexpr double cap_pcb = 1000.0;   // ~1.1 kg of board + parts [J/K]
  constexpr double cap_case = 2000.0;  // ~2.2 kg Al shell
  constexpr double cap_edge = 270.0;
  const double rod_volume = 0.25 * std::numbers::pi * design_.seat.rod_diameter *
                            design_.seat.rod_diameter * 2.0 * design_.seat.rod_half_length *
                            design_.seat.rod_count;
  const double cap_attach =
      rod_volume * design_.seat.material.density * design_.seat.material.specific_heat;

  thermal::ThermalNetwork net;
  const auto pcb = net.add_node("pcb", cap_pcb);
  const auto box = net.add_node("case", cap_case);
  const auto air = net.add_boundary("cabin air", t_cabin_k);
  net.add_conductor(pcb, box, design_.internal_conductance);
  net.add_nonlinear_conductor(
      box, air, [this](double ta, double tb) { return box_skin_conductance(ta, tb); });
  net.add_heat_load(pcb, power_w);

  if (mode == SebCooling::HeatPipesAndLhp) {
    const auto edge = net.add_node("box edge", cap_edge);
    const auto attach = net.add_node("seat attachment", cap_attach);
    net.add_conductor(pcb, edge,
                      1.0 / (heat_pipe_stage_resistance() + joint_stage_resistance()));
    const int n_lhp = design_.lhp_count;
    net.add_nonlinear_conductor(
        edge, attach, [this, n_lhp, elevation](double ta, double tb) {
          const double dt = std::fabs(ta - tb);
          const double t_ref = std::clamp(std::max(ta, tb), lhp_.fluid().t_min() + 1.0,
                                          lhp_.fluid().t_max() - 1.0);
          const auto budget0 = lhp_.pressure_budget(0.0, t_ref, elevation);
          const double tilt_penalty =
              1.0 + 8.0 * budget0.gravity / budget0.capillary_available;
          double q_each = dt / (lhp_.thermal_resistance(10.0, t_ref) * tilt_penalty);
          for (int it = 0; it < 30; ++it) {
            const double next =
                dt / (lhp_.thermal_resistance(q_each, t_ref) * tilt_penalty);
            if (std::fabs(next - q_each) < 1e-9 * (1.0 + next)) break;
            q_each = 0.5 * (q_each + next);
          }
          return static_cast<double>(n_lhp) /
                 (lhp_.thermal_resistance(q_each, t_ref) * tilt_penalty);
        });
    net.add_nonlinear_conductor(
        attach, air, [this](double ta, double tb) { return seat_sink_conductance(ta, tb); });
  }

  numeric::Vector initial(net.node_count(), t_cabin_k);
  const auto trace = net.solve_transient(duration_s, dt_s, initial);

  SebTransient out;
  out.times = trace.times;
  out.t_pcb.reserve(trace.temperatures.size());
  for (const auto& snap : trace.temperatures) out.t_pcb.push_back(snap[pcb]);
  out.steady_dt = solve(power_w, t_cabin_k, mode, tilt_deg).dt_pcb_air;
  const double target = t_cabin_k + 0.9 * out.steady_dt;
  out.time_to_90pct = duration_s;
  for (std::size_t i = 0; i < out.t_pcb.size(); ++i)
    if (out.t_pcb[i] >= target) {
      out.time_to_90pct = out.times[i];
      break;
    }
  return out;
}

double SebModel::capability_at_dt(double dt_target, double t_cabin_k, SebCooling mode,
                                  double tilt_deg, double power_max) const {
  if (dt_target <= 0.0) throw std::invalid_argument("capability_at_dt: dt must be > 0");
  const auto f = [&](double q) {
    return solve(q, t_cabin_k, mode, tilt_deg).dt_pcb_air - dt_target;
  };
  if (f(power_max) < 0.0) return power_max;  // capability beyond the search window
  return numeric::brent(f, 0.5, power_max, {.tolerance = 1e-4, .max_iterations = 100});
}

}  // namespace aeropack::core
