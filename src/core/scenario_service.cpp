#include "core/scenario_service.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "core/seb.hpp"
#include "fem/modal.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"
#include "numeric/hashing.hpp"
#include "obs/registry.hpp"
#include "thermal/fv.hpp"

namespace aeropack::core {

namespace {

double get_or(const std::map<std::string, double>& m, const std::string& key, double fallback) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

std::size_t get_index(const std::map<std::string, double>& m, const std::string& key,
                      std::size_t fallback) {
  const double v = get_or(m, key, static_cast<double>(fallback));
  if (v < 1.0) throw std::invalid_argument("scenario param '" + key + "' must be >= 1");
  return static_cast<std::size_t>(v);
}

// ---- built-in graph: fv_slab_steady -------------------------------------
//
// The qualification-campaign FV slab (bench fv_scenario geometry). Params
// shape the grid; the heat load and the two sink temperatures are deltas,
// so every load/boundary variant of one grid shares a single FvAssembly
// through the artifact cache.
//   params:     nx, ny, nz (16/4/4), lx, ly, lz (0.1/0.02/0.01 m)
//   loads:      power_w (5)
//   boundaries: t_cold (300), t_hot (320)
std::map<std::string, double> fv_slab_steady(const ScenarioSpec& spec, ExecutionContext& ctx) {
  namespace at = aeropack::thermal;
  const std::size_t nx = get_index(spec.params, "nx", 16);
  const std::size_t ny = get_index(spec.params, "ny", 4);
  const std::size_t nz = get_index(spec.params, "nz", 4);
  at::FvModel slab(at::FvGrid::uniform(get_or(spec.params, "lx", 0.1),
                                       get_or(spec.params, "ly", 0.02),
                                       get_or(spec.params, "lz", 0.01), nx, ny, nz));
  slab.set_material(materials::aluminum_6061());
  slab.add_power({0, nx, 0, ny, 0, nz}, get_or(spec.loads, "power_w", 5.0));
  slab.set_boundary(at::Face::XMin,
                    at::BoundaryCondition::fixed(get_or(spec.boundaries, "t_cold", 300.0)));
  slab.set_boundary(at::Face::XMax,
                    at::BoundaryCondition::fixed(get_or(spec.boundaries, "t_hot", 320.0)));

  const at::FvOptions fv_opts;
  at::FvSolution sol;
  if (ArtifactCache* cache = ctx.artifact_cache()) {
    const auto assembly = cache->get_or_build<at::FvAssembly>(
        slab.structural_hash(fv_opts, 0.0),
        [&] { return slab.build_assembly(fv_opts, 0.0); },
        [](const at::FvAssembly& a) { return a.cost_bytes(); });
    sol = slab.solve_steady(assembly, fv_opts);
  } else {
    sol = slab.solve_steady(fv_opts);
  }
  return {{"t_max", sol.max_temperature},
          {"t_min", sol.min_temperature},
          {"energy_residual", sol.energy_residual}};
}

// ---- built-in graph: modal_plate ----------------------------------------
//
// Fig. 2 placement variant (bench modal_scenario geometry): the heavy
// component slides along the board. Point masses perturb M only, so every
// placement variant shares one stiffness matrix — and, at shift 0, one
// cached shift-invert factorization of K.
//   params: mass_x, mass_y (0.05/0.05 m), mass_kg (0.18),
//           thickness (1.6e-3 m), smeared_kg (2.5), n_modes (6)
std::map<std::string, double> modal_plate(const ScenarioSpec& spec, ExecutionContext& ctx) {
  namespace af = aeropack::fem;
  af::PlateModel board(0.16, 0.10, get_or(spec.params, "thickness", 1.6e-3), materials::fr4(),
                       8, 5);
  board.set_edge(af::EdgeSupport::Clamped, true, true, true, true);
  board.add_smeared_mass(get_or(spec.params, "smeared_kg", 2.5));
  board.add_point_mass(get_or(spec.params, "mass_x", 0.05), get_or(spec.params, "mass_y", 0.05),
                       get_or(spec.params, "mass_kg", 0.18));
  board.add_doubler(0.03, 0.13, 0.02, 0.08, 1.8);

  numeric::CsrMatrix k, m;
  board.reduced_sparse(k, m);
  af::ModalOptions opts;
  opts.n_modes = get_index(spec.params, "n_modes", 6);
  opts.path = af::ModalPath::Sparse;

  // The factorization key hashes K and the shift only — sound because we
  // cache exclusively ladder-free shift-0 factorizations, whose factored
  // matrix is exactly K (fem::ModalFactorization docs).
  std::shared_ptr<const af::ModalFactorization> factor;
  if (ArtifactCache* cache = ctx.artifact_cache()) {
    numeric::StructuralHasher h;
    h.add(std::string_view("fem.modal_factorization")).add(numeric::hash_csr(k)).add(opts.shift);
    const std::uint64_t key = h.value();
    factor = cache->find<af::ModalFactorization>(key);
    if (!factor) {
      auto built = std::make_shared<const af::ModalFactorization>(af::factorize_modal(k, m, opts));
      if (built->ladder_free && opts.shift == 0.0)
        cache->insert<af::ModalFactorization>(key, built, built->cost_bytes());
      factor = std::move(built);
    }
  } else {
    factor = std::make_shared<const af::ModalFactorization>(af::factorize_modal(k, m, opts));
  }
  const af::ReducedModes modes = af::solve_reduced_modes(k, m, opts, *factor);

  std::map<std::string, double> out;
  if (!modes.frequencies_hz.empty()) out["f1_hz"] = modes.frequencies_hz[0];
  if (modes.frequencies_hz.size() > 1) out["f2_hz"] = modes.frequencies_hz[1];
  return out;
}

// ---- built-in graph: seb_point ------------------------------------------
//
// SEB operating point on the Fig. 10 LHP chain (bench seb_scenario). The
// model is closed-form — no cacheable artifact, the graph exists so SEB
// sweeps ride the same schema/dedup machinery.
//   params:     tilt_deg (0)
//   loads:      power_w (60)
//   boundaries: t_ambient (295.15 K)
std::map<std::string, double> seb_point(const ScenarioSpec& spec, ExecutionContext&) {
  const SebModel seb{SebDesign{}};
  const SebOperatingPoint op =
      seb.solve(get_or(spec.loads, "power_w", 60.0), get_or(spec.boundaries, "t_ambient", 295.15),
                SebCooling::HeatPipesAndLhp, get_or(spec.params, "tilt_deg", 0.0));
  return {{"dt_pcb_air", op.dt_pcb_air}, {"q_lhp_path", op.q_lhp_path}, {"t_pcb", op.t_pcb}};
}

}  // namespace

struct ScenarioService::Job {
  ScenarioSpec spec;
  ScenarioFn fn;  ///< opaque path when non-empty (spec ignored)
  bool opaque = false;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  ScenarioResult result;
};

ScenarioService::ScenarioService(const ScenarioServiceOptions& opts)
    : opts_(opts), cache_(opts.cache) {
  if (opts_.workers == 0) throw std::invalid_argument("ScenarioService: zero workers");
  register_builtin_graphs();
  workers_.reserve(opts_.workers);
  for (std::size_t w = 0; w < opts_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ScenarioService::~ScenarioService() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ScenarioService::register_builtin_graphs() {
  graphs_["fv_slab_steady"] = fv_slab_steady;
  graphs_["modal_plate"] = modal_plate;
  graphs_["seb_point"] = seb_point;
}

void ScenarioService::register_graph(std::string name, GraphFn fn) {
  if (name.empty()) throw std::invalid_argument("ScenarioService::register_graph: empty name");
  if (!fn) throw std::invalid_argument("ScenarioService::register_graph: empty graph");
  std::lock_guard lock(graphs_mutex_);
  graphs_[std::move(name)] = std::move(fn);
}

bool ScenarioService::has_graph(const std::string& name) const {
  std::lock_guard lock(graphs_mutex_);
  return graphs_.count(name) != 0;
}

ScenarioService::Ticket ScenarioService::submit(ScenarioSpec spec) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Ticket ticket;
  ticket.name_ = spec.name;
  const std::uint64_t hash = opts_.deduplicate ? spec.content_hash() : 0;
  {
    std::lock_guard lock(queue_mutex_);
    if (opts_.deduplicate) {
      const auto it = memo_.find(hash);
      if (it != memo_.end()) {
        dedup_hits_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) obs::current().counter("svc.cache.dedup_hits").add();
        ticket.job_ = it->second;
        return ticket;
      }
    }
    auto job = std::make_shared<Job>();
    job->spec = std::move(spec);
    job->result.name = job->spec.name;
    if (opts_.deduplicate) memo_.emplace(hash, job);
    queue_.push_back(job);
    ticket.job_ = std::move(job);
  }
  queue_cv_.notify_one();
  return ticket;
}

ScenarioService::Ticket ScenarioService::submit(std::string name, ScenarioFn fn) {
  if (!fn) throw std::invalid_argument("ScenarioService::submit: empty scenario");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  job->opaque = true;
  job->result.name = name;
  Ticket ticket;
  ticket.name_ = std::move(name);
  ticket.job_ = job;
  {
    std::lock_guard lock(queue_mutex_);
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return ticket;
}

ScenarioResult ScenarioService::wait(const Ticket& ticket) {
  if (!ticket.job_) throw std::invalid_argument("ScenarioService::wait: empty ticket");
  Job& job = *ticket.job_;
  std::unique_lock lock(job.mutex);
  job.cv.wait(lock, [&] { return job.done; });
  ScenarioResult out = job.result;
  out.name = ticket.name_;
  return out;
}

std::vector<ScenarioResult> ScenarioService::run(const std::vector<ScenarioSpec>& specs) {
  std::vector<Ticket> tickets;
  tickets.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) tickets.push_back(submit(spec));
  std::vector<ScenarioResult> results;
  results.reserve(tickets.size());
  for (const Ticket& t : tickets) results.push_back(wait(t));
  return results;
}

ScenarioServiceStats ScenarioService::stats() const {
  ScenarioServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  return s;
}

void ScenarioService::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(*job);
  }
}

void ScenarioService::execute(Job& job) {
  // Fresh isolated context per scenario, exactly as ScenarioRunner handed
  // out — plus the artifact-cache pointer the solver graphs probe.
  ExecutionConfig cfg;
  cfg.threads = opts_.threads_per_scenario;
  cfg.telemetry = opts_.telemetry;
  cfg.artifact_cache = opts_.use_cache ? &cache_ : nullptr;
  ExecutionContext ctx(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const ExecutionContext::Use use(ctx);
    if (job.opaque) {
      job.result.values = job.fn(ctx);
    } else {
      GraphFn graph;
      {
        std::lock_guard lock(graphs_mutex_);
        const auto it = graphs_.find(job.spec.graph);
        if (it != graphs_.end()) graph = it->second;
      }
      if (!graph)
        throw std::invalid_argument("ScenarioService: unknown graph '" + job.spec.graph + "'");
      job.result.values = graph(job.spec, ctx);
    }
    job.result.ok = true;
  } catch (const std::exception& e) {
    job.result.error = e.what();
  } catch (...) {
    job.result.error = "unknown exception";
  }
  job.result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (opts_.telemetry) {
    job.result.counters = ctx.metrics().counters();
    job.result.gauges = ctx.metrics().gauges();
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(job.mutex);
    job.done = true;
  }
  job.cv.notify_all();
}

}  // namespace aeropack::core
