// Unit helpers. The library works in SI with absolute temperatures; reports
// and benches display Celsius.
#pragma once

namespace aeropack::core {

constexpr double kCelsiusOffset = 273.15;

constexpr double celsius_to_kelvin(double c) { return c + kCelsiusOffset; }
constexpr double kelvin_to_celsius(double k) { return k - kCelsiusOffset; }
constexpr double gravity = 9.80665;  ///< [m/s^2]

}  // namespace aeropack::core
