// The unified transient stepping engine (DESIGN.md "Transient engine").
//
// Every transient path in the toolkit — full finite-volume marches, lumped
// network marches, reduced-order marches and the adaptive mission
// controller — used to carry its own hand-rolled time loop. This header is
// the single replacement: a stepper *concept* (one implicit step of an
// arbitrary size ending at an arbitrary mission time) plus the two loop
// shapes built on it, a fixed-dt march and the PI step-doubling adaptive
// march. Fidelity lives in the stepper (thermal::FvTransientStepper,
// thermal::NetworkTransientStepper, rom::RomTransientStepper); the loops,
// the error control and the input validation live here, once.
//
// Determinism contract: both marches are pure double arithmetic over
// whatever the stepper computes — no reductions, no threading, no
// reordering. A stepper whose step() and error_norm() are bitwise
// deterministic therefore yields bitwise-identical marches at any thread
// count, which is the property the mission determinism sweeps gate.
//
// Validation convention (tested in tests/core/test_transient_engine.cpp):
// every transient entry point reports bad arguments through these helpers,
// so the error texts are uniform across FV, network, ROM and mission:
//   "<entry>: bad time step (require dt > 0)"            per-step dt
//   "<entry>: bad time step (require dt > 0 and t_end > 0)"  march windows
//   "<entry>: state size mismatch (got N, expected M)"   state vectors
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "numeric/dense.hpp"

namespace aeropack::core {

/// One implicit-Euler stepping system. `step(state, t_next, dt)` advances
/// `state` in place by one implicit step of size `dt` ending at mission time
/// `t_next` — resolving any attached drive at `t_next` — and returns the
/// step's solver cost (CG iterations, Picard passes, or 1 for direct
/// solves). `error_norm` is the controller metric between two candidate end
/// states, in kelvin so one tolerance means the same thing at every
/// fidelity. Step size may change freely between calls: steppers apply
/// capacity/dt per call instead of baking it into their operator.
template <typename S>
concept TransientSystem =
    requires(S s, const S cs, numeric::Vector& state, const numeric::Vector& a, double t) {
      { cs.state_size() } -> std::convertible_to<std::size_t>;
      { s.step(state, t, t) } -> std::convertible_to<std::size_t>;
      { cs.error_norm(a, a) } -> std::convertible_to<double>;
    };

/// PI step-size controller knobs for march_adaptive. Defaults suit the
/// coarse qualification models (SEB box, Fig. 2 board); tighten `tolerance`
/// for fine grids.
struct AdaptiveOptions {
  double tolerance = 0.05;  ///< step-doubling error target, error_norm units
  double dt_initial = 1.0;  ///< first attempted step [s]
  double dt_min = 1e-3;     ///< smallest controller step [s]
  double dt_max = 60.0;     ///< largest controller step [s]
  double safety = 0.9;      ///< classic controller safety factor
  double shrink_limit = 0.2;  ///< max per-step shrink factor
  double grow_limit = 4.0;    ///< max per-step growth factor
  /// PI gains for first-order implicit Euler: factor =
  /// safety * (tol/err)^k_i * (err_prev/err)^k_p, clamped to the limits.
  double k_i = 0.35;
  double k_p = 0.2;
  /// Hard cap on attempted steps (accepted + rejected); exceeding it throws
  /// std::runtime_error — the march is diverging or dt_min is too small.
  std::size_t max_steps = 200000;
};

/// Bookkeeping of one adaptive march.
struct MarchStats {
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  /// Accepted steps that landed exactly on a transition boundary < t_end.
  std::size_t boundary_landings = 0;
  /// Sum of stepper.step() costs across every attempt (incl. rejected).
  std::size_t step_cost = 0;
};

/// Per-step validation: a single implicit step needs dt > 0.
inline void check_step_size(const char* where, double dt) {
  if (!(dt > 0.0))
    throw std::invalid_argument(std::string(where) + ": bad time step (require dt > 0)");
}

/// March-window validation: dt and t_end must both be positive; a march
/// shorter than one step degenerates to a single step of t_end (the clamped
/// dt is returned).
inline double check_march_window(const char* where, double t_end, double dt) {
  if (!(dt > 0.0) || !(t_end > 0.0))
    throw std::invalid_argument(std::string(where) +
                                ": bad time step (require dt > 0 and t_end > 0)");
  return std::min(dt, t_end);
}

inline void check_state_size(const char* where, std::size_t got, std::size_t expected) {
  if (got != expected)
    throw std::invalid_argument(std::string(where) + ": state size mismatch (got " +
                                std::to_string(got) + ", expected " + std::to_string(expected) +
                                ")");
}

inline void check_adaptive_options(const char* where, const AdaptiveOptions& adaptive) {
  if (!(adaptive.tolerance > 0.0) || !(adaptive.dt_min > 0.0) ||
      !(adaptive.dt_max >= adaptive.dt_min))
    throw std::invalid_argument(std::string(where) +
                                ": adaptive options must satisfy tolerance > 0, "
                                "0 < dt_min <= dt_max");
}

/// Fixed-dt implicit march over [0, t_end]: ceil(t_end / dt) steps whose end
/// times are the exact products dt * s (not accumulated sums — the grid is
/// bitwise reproducible). `observe(t_next, state)` fires after every step;
/// the return value is the summed step cost. The caller validates and
/// clamps dt through check_march_window first and records the initial state
/// itself — the engine only owns the loop.
template <TransientSystem S, typename Observer>
std::size_t march_fixed(S& stepper, numeric::Vector& state, double t_end, double dt,
                        Observer&& observe) {
  const std::size_t steps = static_cast<std::size_t>(std::ceil(t_end / dt));
  std::size_t cost = 0;
  for (std::size_t s = 1; s <= steps; ++s) {
    const double t_next = dt * static_cast<double>(s);
    cost += stepper.step(state, t_next, dt);
    observe(t_next, state);
  }
  return cost;
}

/// PI step-doubling adaptive march over [0, t_end]. Every attempt computes
/// one full step and two half steps from the same state; their error_norm
/// difference estimates the local truncation error, the (more accurate)
/// two-half solution is the one accepted, and the PI controller picks the
/// next step size. Steps never cross `next_transition(t)` — drivers may be
/// discontinuous there and stepping across a jump would smear it; a step
/// clamped by a boundary keeps the controller's dt ambition.
///
/// Hooks (all may be empty lambdas):
///   on_attempt(cost)          after the three stepper calls of an attempt
///   on_accept(t, state, landed)  after a step is accepted (landed = ended
///                                exactly on a transition boundary < t_end)
///   on_reject()               after a step is rejected
///
/// Throws std::invalid_argument on bad options / state size and
/// std::runtime_error when max_steps attempts cannot reach t_end.
template <TransientSystem S, typename NextTransition, typename OnAttempt, typename OnAccept,
          typename OnReject>
MarchStats march_adaptive(const char* where, S& stepper, numeric::Vector& state, double t_end,
                          const AdaptiveOptions& adaptive, NextTransition&& next_transition,
                          OnAttempt&& on_attempt, OnAccept&& on_accept, OnReject&& on_reject) {
  check_adaptive_options(where, adaptive);
  check_state_size(where, state.size(), stepper.state_size());

  const auto clamp = [](double v, double lo, double hi) { return std::min(hi, std::max(lo, v)); };

  MarchStats out;
  double t = 0.0;
  double dt_want = clamp(adaptive.dt_initial, adaptive.dt_min, adaptive.dt_max);
  // Neutral controller memory: behaves like a plain I controller on step 1.
  double err_prev = adaptive.tolerance;
  numeric::Vector trial, half;
  std::size_t attempts = 0;

  while (t < t_end * (1.0 - 1e-12)) {
    if (++attempts > adaptive.max_steps) {
      throw std::runtime_error(std::string(where) +
                               ": adaptive march exceeded max_steps (tolerance too "
                               "tight or dt_min too small for this model)");
    }
    // Never step across a transition boundary: drivers may jump there.
    const double limit = std::min(t_end, next_transition(t));
    const double room = limit - t;
    double dt_try = std::min(dt_want, room);
    const bool boundary_clamped = dt_try < dt_want;

    const double t_next = (dt_try >= room) ? limit : t + dt_try;
    const double h2 = 0.5 * dt_try;

    // Step-doubling: one full step and two half steps from the same state.
    trial = state;
    std::size_t cost = stepper.step(trial, t_next, dt_try);
    half = state;
    cost += stepper.step(half, t + h2, h2);
    cost += stepper.step(half, t_next, dt_try - h2);
    out.step_cost += cost;
    on_attempt(cost);

    const double err = stepper.error_norm(half, trial);

    // At dt_min there is no smaller step to retry with: accept and move on.
    const bool at_floor = dt_try <= adaptive.dt_min * (1.0 + 1e-9);
    if (err <= adaptive.tolerance || at_floor) {
      // Accept the two-half solution (the more accurate of the pair).
      state.swap(half);
      t = t_next;
      out.steps_accepted += 1;
      const bool landed = t >= limit && limit < t_end;
      if (landed) out.boundary_landings += 1;
      on_accept(t, state, landed);

      double factor = adaptive.grow_limit;
      if (err > 0.0) {
        factor = adaptive.safety * std::pow(adaptive.tolerance / err, adaptive.k_i) *
                 std::pow(err_prev / err, adaptive.k_p);
      }
      factor = clamp(factor, adaptive.shrink_limit, adaptive.grow_limit);
      double next_want = clamp(dt_try * factor, adaptive.dt_min, adaptive.dt_max);
      // A boundary-clamped step says nothing about accuracy at dt_want;
      // keep the controller's ambition instead of shrinking toward slivers.
      if (boundary_clamped) next_want = std::max(next_want, dt_want);
      dt_want = next_want;
      err_prev = std::max(err, 1e-4 * adaptive.tolerance);
    } else {
      out.steps_rejected += 1;
      on_reject();
      const double factor =
          clamp(adaptive.safety * std::sqrt(adaptive.tolerance / err), adaptive.shrink_limit, 0.9);
      dt_want = std::max(adaptive.dt_min, dt_try * factor);
    }
  }
  return out;
}

}  // namespace aeropack::core
