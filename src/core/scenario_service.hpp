// core::ScenarioService — persistent, re-entrant scenario executor over
// shareable immutable artifacts (DESIGN.md "Scenario service").
//
// The service upgrades the batch-of-closures model (core::ScenarioRunner,
// now a thin shim over this class) to a schema-first one:
//  - Scenarios arrive as serializable core::ScenarioSpec values — a named
//    solver graph plus flat parameter/load/boundary maps — not opaque
//    std::function closures. Because a spec is data, the service
//    content-hashes it and *deduplicates*: two submissions with equal
//    content hashes resolve to one solve, the second submitter waits on
//    the first's job (svc.dedup_hits). The memo persists for the service
//    lifetime, so re-submitting a spec after its batch completed returns
//    the memoized result without re-solving.
//  - A keyed core::ArtifactCache sits under all workers. Each scenario's
//    fresh ExecutionContext carries a pointer to it; registered solver
//    graphs probe it for structurally-shared immutable artifacts (FV
//    assemblies, modal factorizations, ROM models) keyed by structural
//    hashes. Cache-hit solves are bitwise identical to cold solves at any
//    worker count — the determinism contract the svc ctest tier gates,
//    plain and under TSan.
//
// Execution model: `workers` persistent threads drain a FIFO queue. Every
// scenario gets a fresh ExecutionContext (own pool, own registry) created,
// bound, driven and destroyed on one worker thread, so per-scenario
// telemetry comes back isolated exactly as it did from ScenarioRunner.
// Results are delivered through tickets; wait() blocks until that
// scenario's job completes (which may have been computed for an earlier
// duplicate submission).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/scenario_spec.hpp"
#include "exec/context.hpp"

namespace aeropack::core {

/// One opaque scenario: runs against the context it was handed (already
/// bound to the calling thread) and returns named scalar outputs. Throwing
/// marks the scenario failed without aborting the batch. Opaque scenarios
/// cannot be deduplicated or artifact-keyed — prefer ScenarioSpec.
using ScenarioFn = std::function<std::map<std::string, double>(ExecutionContext&)>;

/// One registered solver graph: interprets a spec's params/loads/boundaries
/// and returns named scalar outputs. Runs with the scenario's context bound
/// to the calling thread; probes ctx.artifact_cache() (may be null) for
/// shared artifacts.
using GraphFn =
    std::function<std::map<std::string, double>(const ScenarioSpec&, ExecutionContext&)>;

struct ScenarioResult {
  std::string name;
  bool ok = false;
  std::string error;  ///< exception message when !ok
  std::map<std::string, double> values;  ///< scenario outputs
  /// The scenario's isolated cost profile: counters + high-water marks from
  /// its private registry (empty when telemetry is off).
  std::map<std::string, std::uint64_t> counters;
  /// Last-set gauge values from the same registry (convergence traces,
  /// problem sizes), captured alongside the counters.
  std::map<std::string, double> gauges;
  double seconds = 0.0;  ///< wall time of this scenario's run
};

struct ScenarioServiceOptions {
  /// Persistent worker threads (0 throws std::invalid_argument — the same
  /// validation convention as ScenarioRunner).
  std::size_t workers = 1;
  /// Pool size handed to every scenario's context.
  std::size_t threads_per_scenario = 1;
  /// Arm each scenario's registry so results carry counters + gauges.
  bool telemetry = true;
  /// Resolve content-hash-equal specs to a single solve.
  bool deduplicate = true;
  /// Hand every scenario context a pointer to the shared ArtifactCache.
  /// Off = every solve builds from scratch (the ScenarioRunner
  /// compatibility setting — keeps legacy per-scenario counters intact).
  bool use_cache = true;
  ArtifactCacheOptions cache;
};

/// Lifetime totals of the service itself (cache totals live in
/// ArtifactCache::stats()).
struct ScenarioServiceStats {
  std::uint64_t submitted = 0;   ///< submit() calls, both kinds
  std::uint64_t executed = 0;    ///< scenarios actually solved
  std::uint64_t dedup_hits = 0;  ///< submissions resolved to an existing job
};

class ScenarioService {
  struct Job;

 public:
  explicit ScenarioService(const ScenarioServiceOptions& opts = {});
  /// Drains the queue (every submitted scenario still executes), then joins
  /// the workers. Waiting on a ticket after the service is destroyed is
  /// undefined — wait first.
  ~ScenarioService();
  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  /// Handle to one submission. Duplicate submissions share a job but keep
  /// their own ticket (and their own result name).
  class Ticket {
   public:
    Ticket() = default;
    explicit operator bool() const { return static_cast<bool>(job_); }

   private:
    friend class ScenarioService;
    std::shared_ptr<Job> job_;
    std::string name_;
  };

  /// Register (or replace) a solver graph. The built-in graphs
  /// "fv_slab_steady", "modal_plate" and "seb_point" are registered by the
  /// constructor; rom::register_rom_graphs adds the ROM-backed ones.
  void register_graph(std::string name, GraphFn fn);
  bool has_graph(const std::string& name) const;

  /// Submit a spec. With deduplication on, a spec whose content hash
  /// matches an earlier submission returns a ticket onto the existing job
  /// (no new solve). An unknown spec.graph fails at execution with a
  /// descriptive ScenarioResult::error, not here.
  Ticket submit(ScenarioSpec spec);
  /// Submit an opaque closure (ScenarioRunner compatibility path): never
  /// deduplicated, never artifact-keyed. Throws on an empty fn.
  Ticket submit(std::string name, ScenarioFn fn);

  /// Block until the ticket's job completes; returns a copy of its result
  /// with the ticket's own name. Throws std::invalid_argument on a
  /// default-constructed ticket.
  ScenarioResult wait(const Ticket& ticket);

  /// submit() + wait() over a batch, results in input order.
  std::vector<ScenarioResult> run(const std::vector<ScenarioSpec>& specs);

  ScenarioServiceStats stats() const;
  ArtifactCache& cache() { return cache_; }
  const ArtifactCache& cache() const { return cache_; }
  const ScenarioServiceOptions& options() const { return opts_; }

 private:
  void worker_loop();
  void execute(Job& job);
  void register_builtin_graphs();

  ScenarioServiceOptions opts_;
  ArtifactCache cache_;

  mutable std::mutex graphs_mutex_;
  std::map<std::string, GraphFn> graphs_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stopping_ = false;
  // Dedup memo: content hash -> job, for the service lifetime.
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> memo_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> dedup_hits_{0};

  std::vector<std::thread> workers_;
};

}  // namespace aeropack::core
