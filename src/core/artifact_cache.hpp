// core::ArtifactCache — a keyed, sharded, capacity-bounded store of shared
// immutable solver artifacts (DESIGN.md "Scenario service").
//
// The cache maps a 64-bit structural key to a type-erased
// shared_ptr<const void>. Values are immutable by contract: producers
// (thermal::FvAssembly, fem::ModalFactorization, rom::RomModel) expose
// only const operations, so a cached artifact may be consumed concurrently
// from any number of scenario workers without synchronization beyond the
// lookup itself.
//
// Determinism contract: keys are FNV-1a hashes over the exact IEEE-754 bit
// patterns of every input that shapes the artifact. Hash-equal inputs are
// bitwise-equal inputs, the builders are deterministic, so a cache hit
// hands back an artifact bitwise identical to what a cold build would have
// produced — which is why cached solves gate bit-identical to cold solves
// (tests/svc/test_artifact_reuse.cpp, plain + TSan).
//
// Concurrency: N shards (key-partitioned), each a reader-writer-locked
// map. Lookups take shared locks; inserts/evictions take exclusive locks
// on one shard only. get_or_build runs the builder OUTSIDE any lock — two
// threads may race to build the same key, both builds are deterministic
// and equal, one insert wins, the loser's copy is dropped (benign,
// counted as a hit for the loser since the value was served).
//
// Eviction: when a shard would exceed its share of capacity_bytes, the
// entries with the lowest (1 + hits) / cost_bytes utility are dropped
// first (cost-aware LFU; ties broken by older last-access tick). Eviction
// never touches other shards.
//
// Observability: svc.cache.{hits,misses,insertions,evictions} counters in
// the calling thread's obs registry, plus always-on internal totals via
// stats() for tests and the bench gates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

namespace aeropack::core {

struct ArtifactCacheOptions {
  /// Number of key-partitioned shards (0 is clamped to 1). More shards =
  /// less lock contention between unrelated keys.
  std::size_t shards = 8;
  /// Total capacity across all shards, in artifact cost_bytes. 0 disables
  /// storage entirely (every lookup misses; inserts are dropped) — useful
  /// as a no-cache baseline that still exercises the code path.
  std::size_t capacity_bytes = std::size_t{1} << 30;
};

struct ArtifactCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

class ArtifactCache {
 public:
  explicit ArtifactCache(const ArtifactCacheOptions& options = {});
  ~ArtifactCache();
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Typed lookup. Returns null on absent key OR type mismatch (a key
  /// collision across artifact types is treated as a miss, never a cast).
  template <typename T>
  std::shared_ptr<const T> find(std::uint64_t key) {
    auto erased = find_erased(key, typeid(T));
    return std::static_pointer_cast<const T>(std::move(erased));
  }

  /// Insert (first writer wins; an existing entry under the key is kept).
  /// `cost_bytes` drives capacity accounting and eviction utility.
  template <typename T>
  void insert(std::uint64_t key, std::shared_ptr<const T> value, std::size_t cost_bytes) {
    insert_erased(key, std::shared_ptr<const void>(std::move(value)), typeid(T), cost_bytes);
  }

  /// find-or-build convenience: on miss, runs `build()` outside all locks,
  /// inserts the result (cost from `cost(*value)`) and returns it. Racing
  /// builders are benign — see the header comment.
  template <typename T, typename BuildFn, typename CostFn>
  std::shared_ptr<const T> get_or_build(std::uint64_t key, BuildFn&& build, CostFn&& cost) {
    if (auto hit = find<T>(key)) return hit;
    std::shared_ptr<const T> built = build();
    if (built) insert<T>(key, built, cost(*built));
    return built;
  }

  /// Lifetime totals (always on, independent of obs telemetry).
  ArtifactCacheStats stats() const;

  const ArtifactCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
    std::size_t cost_bytes = 0;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> last_access{0};
  };
  struct Shard {
    mutable std::shared_mutex mutex;
    // unique_ptr: Entry holds atomics (non-movable), and lookups bump the
    // per-entry counters under a shared lock.
    std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> entries;
    std::size_t bytes = 0;
  };

  Shard& shard_for(std::uint64_t key);
  std::shared_ptr<const void> find_erased(std::uint64_t key, const std::type_info& type);
  void insert_erased(std::uint64_t key, std::shared_ptr<const void> value,
                     const std::type_info& type, std::size_t cost_bytes);
  void evict_locked(Shard& shard, std::size_t budget);

  ArtifactCacheOptions options_;
  std::size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace aeropack::core
