#include "core/scenario_runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

namespace aeropack::core {

ScenarioRunner::ScenarioRunner(const ScenarioRunnerOptions& opts) : opts_(opts) {
  if (opts_.workers == 0) throw std::invalid_argument("ScenarioRunner: zero workers");
}

void ScenarioRunner::add(std::string name, ScenarioFn fn) {
  if (!fn) throw std::invalid_argument("ScenarioRunner::add: empty scenario");
  scenarios_.push_back({std::move(name), std::move(fn)});
}

std::vector<ScenarioResult> ScenarioRunner::run() const {
  std::vector<ScenarioResult> results(scenarios_.size());

  // Workers pull indices from a shared dispenser; each scenario gets a fresh
  // context created, bound, driven and torn down entirely on one worker
  // thread, so no pool or registry is ever touched from two threads.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= scenarios_.size()) return;
      ScenarioResult& out = results[i];
      out.name = scenarios_[i].name;
      ExecutionConfig cfg;
      cfg.threads = opts_.threads_per_scenario;
      cfg.telemetry = opts_.telemetry;
      ExecutionContext ctx(cfg);
      const auto t0 = std::chrono::steady_clock::now();
      try {
        const ExecutionContext::Use use(ctx);
        out.values = scenarios_[i].fn(ctx);
        out.ok = true;
      } catch (const std::exception& e) {
        out.error = e.what();
      } catch (...) {
        out.error = "unknown exception";
      }
      out.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      if (opts_.telemetry) out.counters = ctx.metrics().counters();
    }
  };

  const std::size_t n_workers = std::min(opts_.workers, scenarios_.size());
  if (n_workers <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return results;
}

}  // namespace aeropack::core
