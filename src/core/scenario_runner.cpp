#include "core/scenario_runner.hpp"

#include <stdexcept>
#include <utility>

namespace aeropack::core {

ScenarioRunner::ScenarioRunner(const ScenarioRunnerOptions& opts) : opts_(opts) {
  if (opts_.workers == 0) throw std::invalid_argument("ScenarioRunner: zero workers");
}

void ScenarioRunner::add(std::string name, ScenarioFn fn) {
  if (!fn) throw std::invalid_argument("ScenarioRunner::add: empty scenario");
  scenarios_.push_back({std::move(name), std::move(fn)});
}

std::vector<ScenarioResult> ScenarioRunner::run() const {
  // Transient service, legacy configuration: no dedup (every closure runs),
  // no artifact cache (per-scenario counters stay exactly what an isolated
  // cold solve produces — the contract bench/expected/ freezes).
  ScenarioServiceOptions sopts;
  sopts.workers = opts_.workers;
  sopts.threads_per_scenario = opts_.threads_per_scenario;
  sopts.telemetry = opts_.telemetry;
  sopts.deduplicate = false;
  sopts.use_cache = false;
  ScenarioService service(sopts);

  std::vector<ScenarioService::Ticket> tickets;
  tickets.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) tickets.push_back(service.submit(s.name, s.fn));
  std::vector<ScenarioResult> results;
  results.reserve(tickets.size());
  for (const auto& t : tickets) results.push_back(service.wait(t));
  return results;
}

}  // namespace aeropack::core
