#include "core/design_procedure.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/units.hpp"
#include "fem/fatigue.hpp"
#include "fem/sdof.hpp"

namespace aeropack::core {

void FrequencyAllocationPlan::allocate(std::string owner, double lo_hz, double hi_hz) {
  if (lo_hz <= 0.0 || hi_hz <= lo_hz)
    throw std::invalid_argument("FrequencyAllocationPlan: invalid band");
  for (const FrequencyBand& b : bands_) {
    if (b.owner == owner) throw std::invalid_argument("FrequencyAllocationPlan: duplicate owner");
    if (lo_hz < b.hi_hz && b.lo_hz < hi_hz)
      throw std::invalid_argument("FrequencyAllocationPlan: band overlaps '" + b.owner + "'");
  }
  bands_.push_back({std::move(owner), lo_hz, hi_hz});
}

const FrequencyBand& FrequencyAllocationPlan::band(const std::string& owner) const {
  for (const FrequencyBand& b : bands_)
    if (b.owner == owner) return b;
  throw std::out_of_range("FrequencyAllocationPlan: no band for '" + owner + "'");
}

bool FrequencyAllocationPlan::complies(const std::string& owner, double frequency_hz) const {
  const FrequencyBand& b = band(owner);
  return frequency_hz >= b.lo_hz && frequency_hz <= b.hi_hz;
}

DesignReport run_design_procedure(const DesignInputs& inputs) {
  DesignReport rpt;
  rpt.equipment = inputs.equipment.name;

  // --- Thermal branch (Fig. 1 left): Level 1 selection, then levels 2-3.
  rpt.cooling = select_cooling(inputs.equipment, inputs.spec);
  const CoolingTechnology tech = rpt.cooling.any_feasible
                                     ? rpt.cooling.selected
                                     : CoolingTechnology::TwoPhase;  // escalate
  rpt.thermal = run_thermal_levels(inputs.equipment, inputs.spec, tech, inputs.thermal_mesh);

  // --- Mechanical branch (Fig. 1 right): modal placement + random fatigue.
  const double fn = inputs.critical_board.fundamental_frequency();
  rpt.mechanical.fundamental_frequency = fn;
  rpt.mechanical.frequency_allocated = inputs.plan.complies(inputs.board_band_owner, fn);
  const double asd = (fn >= inputs.vibration.f_min() && fn <= inputs.vibration.f_max())
                         ? inputs.vibration(fn)
                         : 0.0;
  rpt.mechanical.response_grms = fem::miles_grms(fn, inputs.damping, asd);
  const auto steinberg = fem::steinberg_assess(
      inputs.critical_board.length_x(), inputs.critical_board.thickness(),
      inputs.critical_component_length, 1.0, 1.0, fn, rpt.mechanical.response_grms);
  rpt.mechanical.steinberg_margin = steinberg.margin;
  rpt.mechanical.fatigue_ok = steinberg.acceptable;

  // --- Qualification campaign on the converged design.
  EquipmentUnderTest eut;
  eut.name = inputs.equipment.name;
  eut.mass = inputs.equipment.chassis_mass + 0.0;
  for (const Module& m : inputs.equipment.modules) eut.mass += m.shell_mass;
  eut.fundamental_frequency = std::max(fn, 20.0);
  eut.damping_ratio = inputs.damping;
  eut.mount_yield = inputs.equipment.chassis.yield_strength;
  eut.board_edge = inputs.critical_board.length_x();
  eut.board_thickness = inputs.critical_board.thickness();
  eut.critical_component_length = inputs.critical_component_length;
  eut.junction_limit = inputs.spec.junction_limit;
  const Equipment eq_copy = inputs.equipment;
  const Specification spec_copy = inputs.spec;
  const std::size_t mesh = inputs.thermal_mesh;
  eut.worst_junction_at_ambient = [eq_copy, spec_copy, tech, mesh](double ambient_k) {
    Specification s = spec_copy;
    s.ambient_temperature = ambient_k;
    return run_thermal_levels(eq_copy, s, tech, mesh).worst_junction;
  };
  CampaignOptions qopts;
  qopts.acceleration_g = inputs.spec.linear_acceleration_g;
  qopts.vibration_curve = inputs.vibration;
  qopts.vibration_duration_s = inputs.spec.vibration_duration_s;
  qopts.climatic_low = inputs.spec.ambient_cold;
  qopts.climatic_high = inputs.spec.ambient_temperature;
  qopts.shock_low = inputs.spec.thermal_shock_low;
  qopts.shock_high = inputs.spec.thermal_shock_high;
  qopts.shock_rate_k_per_min = inputs.spec.thermal_shock_rate;
  rpt.qualification = run_campaign(eut, qopts);

  rpt.accepted = rpt.cooling.any_feasible && rpt.thermal.level1.within_limits &&
                 rpt.thermal.mtbf_met && rpt.mechanical.frequency_allocated &&
                 rpt.mechanical.fatigue_ok && rpt.qualification.all_passed;
  return rpt;
}

std::string DesignReport::to_text() const {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  os << "=== PACKAGING DESIGN DOCUMENT: " << equipment << " ===\n\n";
  os << "[Cooling selection — Level 1]\n";
  for (const auto& a : cooling.assessments)
    os << "  " << to_string(a.technology) << ": capability " << a.max_power << " W"
       << (a.feasible ? "  [feasible]" : "") << (a.available ? "" : "  [not available]")
       << "\n";
  os << "  selected: " << to_string(cooling.selected) << "\n\n";

  os << "[Thermal — Levels 1-3]\n";
  os << "  case temperature: " << kelvin_to_celsius(thermal.level1.case_temperature) << " C\n";
  os << "  internal ambient: " << kelvin_to_celsius(thermal.level1.internal_air_temperature)
     << " C\n";
  for (const auto& b : thermal.level2)
    os << "  board '" << b.board << "': max " << kelvin_to_celsius(b.max_temperature)
       << " C over " << b.cell_count << " cells\n";
  os << "  worst junction: " << kelvin_to_celsius(thermal.worst_junction) << " C\n";
  os << "  MTBF: " << thermal.mtbf.mtbf_hours << " h ("
     << (thermal.mtbf_met ? "meets" : "MISSES") << " target)\n\n";

  os << "[Mechanical]\n";
  os << "  fundamental frequency: " << mechanical.fundamental_frequency << " Hz ("
     << (mechanical.frequency_allocated ? "inside" : "OUTSIDE") << " allocated band)\n";
  os << "  random response: " << mechanical.response_grms << " grms, Steinberg margin "
     << mechanical.steinberg_margin << (mechanical.fatigue_ok ? " [ok]" : " [FAIL]") << "\n\n";

  os << "[Qualification]\n";
  for (const auto& t : qualification.results)
    os << "  " << t.test << ": " << (t.passed ? "PASS" : "FAIL") << " (margin " << t.margin
       << ") — " << t.detail << "\n";
  os << "\nDESIGN " << (accepted ? "ACCEPTED" : "REJECTED — iterate (Fig. 1 loop)") << "\n";
  return os.str();
}

}  // namespace aeropack::core
