// core::ScenarioRunner — batch executor for independent co-design scenarios.
//
// The paper's Fig. 1 co-design loop evaluates mechanical and thermal models
// in parallel against one specification; scaled up, a trade study is a batch
// of independent what-if scenarios (an SEB power sweep, modal placement
// variants, a qualification campaign). Each scenario runs on its own
// aeropack::ExecutionContext — its own thread pool and telemetry registry —
// so N scenarios execute concurrently with zero shared mutable state, and
// every scenario's cost profile (counters) comes back isolated in its
// result.
//
// Determinism: a scenario's numeric results are bit-identical whether the
// batch runs on 1 worker or 16, because each scenario's kernels run on its
// private pool with the deterministic chunked reductions, and contexts are
// handed out with identical configuration. Results are returned in add()
// order regardless of completion order.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exec/context.hpp"

namespace aeropack::core {

/// One scenario: runs against the context it was handed (already bound to
/// the calling thread) and returns named scalar outputs (peak temperature,
/// first mode, margin...). Throwing marks the scenario failed without
/// aborting the batch.
using ScenarioFn = std::function<std::map<std::string, double>(ExecutionContext&)>;

struct ScenarioResult {
  std::string name;
  bool ok = false;
  std::string error;  ///< exception message when !ok
  std::map<std::string, double> values;  ///< scenario outputs
  /// The scenario's isolated cost profile: counters + high-water marks from
  /// its private registry (empty when telemetry is off).
  std::map<std::string, std::uint64_t> counters;
  double seconds = 0.0;  ///< wall time of this scenario's run
};

struct ScenarioRunnerOptions {
  /// Concurrent scenario workers (each drives one context at a time).
  std::size_t workers = 1;
  /// Pool size handed to every scenario's context.
  std::size_t threads_per_scenario = 1;
  /// Arm each scenario's registry so results carry cost counters.
  bool telemetry = true;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioRunnerOptions& opts = {});

  /// Queue a scenario. Names label results and reports; keep them unique.
  void add(std::string name, ScenarioFn fn);

  std::size_t scenario_count() const { return scenarios_.size(); }

  /// Run every queued scenario and return results in add() order. Scenarios
  /// are dispatched to `workers` threads; each runs with a fresh
  /// ExecutionContext bound to its worker thread. The queue is left intact,
  /// so a runner can be re-run (fresh contexts, fresh counters).
  std::vector<ScenarioResult> run() const;

 private:
  struct Scenario {
    std::string name;
    ScenarioFn fn;
  };
  ScenarioRunnerOptions opts_;
  std::vector<Scenario> scenarios_;
};

}  // namespace aeropack::core
