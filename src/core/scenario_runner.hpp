// core::ScenarioRunner — batch executor for independent co-design scenarios.
//
// Compatibility shim over core::ScenarioService (DESIGN.md "Scenario
// service"): the runner keeps the original add-closures-then-run() API and
// its exact execution semantics — fresh ExecutionContext per scenario,
// results in add() order, isolated per-scenario counters — by driving a
// service configured with deduplication and the artifact cache OFF. Batches
// that want the schema, dedup and cross-scenario artifact reuse submit
// core::ScenarioSpec values to a ScenarioService directly.
//
// Determinism: a scenario's numeric results are bit-identical whether the
// batch runs on 1 worker or 16, because each scenario's kernels run on its
// private pool with the deterministic chunked reductions, and contexts are
// handed out with identical configuration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/scenario_service.hpp"

namespace aeropack::core {

struct ScenarioRunnerOptions {
  /// Concurrent scenario workers (each drives one context at a time).
  std::size_t workers = 1;
  /// Pool size handed to every scenario's context.
  std::size_t threads_per_scenario = 1;
  /// Arm each scenario's registry so results carry cost counters.
  bool telemetry = true;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioRunnerOptions& opts = {});

  /// Queue a scenario. Names label results and reports; keep them unique.
  void add(std::string name, ScenarioFn fn);

  std::size_t scenario_count() const { return scenarios_.size(); }

  /// Run every queued scenario and return results in add() order. Scenarios
  /// are dispatched to `workers` threads; each runs with a fresh
  /// ExecutionContext bound to its worker thread. The queue is left intact,
  /// so a runner can be re-run (fresh contexts, fresh counters — a
  /// transient ScenarioService is built per run() call).
  std::vector<ScenarioResult> run() const;

 private:
  struct Scenario {
    std::string name;
    ScenarioFn fn;
  };
  ScenarioRunnerOptions opts_;
  std::vector<Scenario> scenarios_;
};

}  // namespace aeropack::core
