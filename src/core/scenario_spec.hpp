// core::ScenarioSpec — the serializable scenario schema of the scenario
// service layer (DESIGN.md "Scenario service").
//
// A spec is pure data: a named solver graph plus three flat key->double
// maps (design parameters, load deltas, boundary deltas). Because it is
// data and not a closure, the service can
//  - content-hash it (FNV-1a over exact IEEE-754 bit patterns) and
//    deduplicate identical submissions to a single solve, and
//  - structurally hash the geometry-determining subset (graph + params)
//    to key shared immutable artifacts in core::ArtifactCache: two specs
//    that differ only in loads/boundaries share one FV assembly / modal
//    factorization.
//
// serialize()/deserialize() round-trip losslessly: doubles are written as
// C99 hexfloats ("%a"), so the parsed spec hashes to the same value as the
// original. The format is a single line, safe to embed in reports or logs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace aeropack::core {

struct ScenarioSpec {
  /// Display / result name. NOT part of content_hash(): two submissions
  /// that differ only in name are the same solve and deduplicate.
  std::string name;
  /// Registered solver-graph kind (e.g. "fv_slab_steady", "modal_plate",
  /// "seb_point", "rom_board_steady"). Unknown graphs fail at execution
  /// with a descriptive ScenarioResult::error, not at submission.
  std::string graph;
  /// Design parameters that shape geometry / discretization / the operator
  /// structure. Part of both hashes.
  std::map<std::string, double> params;
  /// Source-term deltas (powers, fluxes). Content hash only — they never
  /// change the operator structure.
  std::map<std::string, double> loads;
  /// Boundary deltas (sink temperatures, film coefficients). Content hash
  /// only.
  std::map<std::string, double> boundaries;

  /// Identity of the *solve*: graph + params + loads + boundaries (name
  /// excluded). Equal hashes mean equal inputs bit-for-bit, so the solves
  /// are interchangeable and the service runs one of them.
  std::uint64_t content_hash() const;
  /// Identity of the *operator structure*: graph + params only. Specs with
  /// equal structural hashes share cacheable artifacts (FV assemblies,
  /// factorizations) even when their loads/boundaries differ.
  std::uint64_t structural_hash() const;

  /// One-line, lossless text form ("scenario/1|name=...|graph=...|p:k=v|...").
  /// Doubles are %a hexfloats; '%', '|' and '=' in strings are %XX-escaped.
  std::string serialize() const;
  /// Inverse of serialize(). Throws std::invalid_argument on malformed
  /// input (wrong magic, bad escape, unparsable hexfloat, duplicate key).
  static ScenarioSpec deserialize(const std::string& text);

  friend bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) = default;
};

}  // namespace aeropack::core
