#include "core/levels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/units.hpp"
#include "materials/air.hpp"
#include "thermal/convection.hpp"
#include "thermal/forced_air.hpp"
#include "thermal/fv.hpp"
#include "thermal/network.hpp"

namespace aeropack::core {

Level1Result run_level1(const Equipment& eq, const Specification& spec,
                        CoolingTechnology technology) {
  const double q = eq.total_power();
  // Case-to-ambient conductance implied by the technology's capability at
  // the Level-1 budget (capability = UA * case_rise by construction).
  const double budget = spec.local_ambient_limit - spec.ambient_temperature;
  const double case_rise_budget = 0.6 * budget;
  const double capability = technology_capability(technology, eq, spec);
  Level1Result r;
  r.node_count = 3;
  if (capability <= 0.0 || case_rise_budget <= 0.0) {
    r.case_temperature = r.internal_air_temperature = 1e9;
    return r;
  }
  r.ua_case_to_ambient = capability / case_rise_budget;

  // Three-node network: internal air -> case -> ambient. Internal film:
  // natural convection inside the box over the board area.
  thermal::ThermalNetwork net;
  const auto internal = net.add_node("internal", 0.0);
  const auto case_node = net.add_node("case", 0.0);
  const auto ambient = net.add_boundary("ambient", spec.ambient_temperature);
  double board_area = 0.0;
  std::size_t n_cards = 0;
  for (const Module& m : eq.modules)
    for (const Board& b : m.boards) {
      board_area += 2.0 * b.area();
      ++n_cards;
    }
  board_area = std::max(board_area, 0.01);
  // Internal (boards -> case) conductance depends on the cooling concept:
  // conduction-cooled cards are drained straight to the walls; direct air
  // washes the boards; otherwise internal film + standoff conduction.
  double g_internal = 6.0 * board_area + 1.0;
  if (technology == CoolingTechnology::ConductionCooled)
    g_internal = static_cast<double>(std::max<std::size_t>(n_cards, 1)) / 0.65 +
                 6.0 * board_area;
  else if (technology == CoolingTechnology::DirectAirFlow)
    g_internal = 25.0 * board_area + 1.0;
  net.add_conductor(internal, case_node, g_internal);
  net.add_conductor(case_node, ambient, r.ua_case_to_ambient);
  net.add_heat_load(internal, q);
  const auto sol = net.solve_steady();
  r.internal_air_temperature = sol.temperatures[internal];
  r.case_temperature = sol.temperatures[case_node];
  r.within_limits = r.internal_air_temperature <= spec.local_ambient_limit;
  return r;
}

Level2BoardResult run_level2(const Board& board, const Specification& spec,
                             CoolingTechnology technology, double board_ambient,
                             std::size_t mesh) {
  if (mesh < 4) throw std::invalid_argument("run_level2: mesh too coarse");
  const auto pt = materials::isa_atmosphere(spec.altitude);
  const materials::SolidMaterial mat = board.stackup.as_material();

  const std::size_t nx = mesh;
  const std::size_t ny = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::lround(static_cast<double>(mesh) * board.width /
                                              board.length)));
  thermal::FvGrid grid = thermal::FvGrid::uniform(board.length, board.width,
                                                  board.stackup.board_thickness, nx, ny, 1);
  thermal::FvModel model(std::move(grid));
  model.set_material(mat);
  if (board.drain_thickness > 0.0) {
    // Bonded aluminum core: boosts the in-plane conductance in proportion to
    // its thickness share (parallel path to the laminate).
    const double k_drain = materials::aluminum_6061().conductivity *
                           board.drain_thickness / board.stackup.board_thickness;
    model.set_conductivity(model.all_cells(), mat.conductivity + k_drain,
                           mat.conductivity + k_drain, mat.conductivity_through);
  }

  // Dissipative patches: each component's power over its footprint.
  for (const Component& c : board.components) {
    const double half = 0.5 * std::sqrt(c.footprint_area);
    const auto clampi = [&](double v, std::size_t n) {
      return std::min<std::size_t>(
          n - 1, static_cast<std::size_t>(std::max(0.0, std::floor(v))));
    };
    thermal::CellRange r;
    r.i0 = clampi((c.x - half) / board.length * static_cast<double>(nx), nx);
    r.i1 = std::min<std::size_t>(nx, clampi((c.x + half) / board.length *
                                            static_cast<double>(nx), nx) + 1);
    r.j0 = clampi((c.y - half) / board.width * static_cast<double>(ny), ny);
    r.j1 = std::min<std::size_t>(ny, clampi((c.y + half) / board.width *
                                            static_cast<double>(ny), ny) + 1);
    r.k0 = 0;
    r.k1 = 1;
    model.add_power(r, c.power * c.count);
  }

  // Boundary conditions by technology.
  using thermal::BoundaryCondition;
  using thermal::Face;
  switch (technology) {
    case CoolingTechnology::ConductionCooled: {
      // Wedge-locked edges to the rack walls at board_ambient, modest
      // conductance (lock resistance folded into an equivalent h over the
      // edge faces); faces adiabatic (sealed module).
      const double h_edge = 2500.0;  // edge strap equivalent film
      model.set_boundary(Face::XMin, BoundaryCondition::convection(h_edge, board_ambient));
      model.set_boundary(Face::XMax, BoundaryCondition::convection(h_edge, board_ambient));
      model.set_boundary(Face::ZMin, BoundaryCondition::adiabatic());
      model.set_boundary(Face::ZMax, BoundaryCondition::adiabatic());
      break;
    }
    case CoolingTechnology::DirectAirFlow: {
      thermal::ArincAirSupply supply;
      supply.inlet_temperature = board_ambient;
      supply.pressure = pt.pressure;
      thermal::CardChannel chan{board.width, board.length, 5e-3};
      const auto hs = thermal::analyze_hot_spot(supply, chan,
                                                std::max(board.total_power(), 1.0), 1.0, 0.5,
                                                spec.local_ambient_limit);
      const double h = std::max(hs.h, 1.0);
      // Streamwise-coupled channel (the conjugate effect the CFD tool
      // resolves): the air heats up as it crosses the card, so downstream
      // columns see a warmer sink. March the air energy balance along x and
      // iterate against the conduction solution.
      const double mdot = supply.mass_flow(std::max(board.total_power(), 1.0));
      const double cp = materials::air_at(board_ambient, pt.pressure).specific_heat;
      std::vector<double> t_air(nx, board_ambient);
      for (int pass = 0; pass < 4; ++pass) {
        for (std::size_t i = 0; i < nx; ++i) {
          thermal::CellRange col{i, i + 1, 0, ny, 0, 1};
          model.set_boundary_patch(Face::ZMin, col,
                                   BoundaryCondition::convection(h, t_air[i]));
          model.set_boundary_patch(Face::ZMax, col,
                                   BoundaryCondition::convection(h, t_air[i]));
        }
        const auto pass_sol = model.solve_steady();
        double t_stream = board_ambient;
        for (std::size_t i = 0; i < nx; ++i) {
          t_air[i] = t_stream;
          // Heat removed from both faces of this column of cells.
          double q_col = 0.0;
          for (std::size_t j = 0; j < ny; ++j) {
            const double area = model.grid().dx(i) * model.grid().dy(j);
            const double ts = pass_sol.temperatures[model.grid().index(i, j, 0)];
            q_col += 2.0 * h * area * (ts - t_stream);
          }
          t_stream += std::max(q_col, 0.0) / std::max(mdot * cp, 1e-9);
        }
      }
      break;
    }
    default: {
      // Natural convection both faces to the internal ambient.
      model.set_boundary(
          Face::ZMin, BoundaryCondition::natural(thermal::SurfaceOrientation::Vertical,
                                                 board.width, board_ambient, pt.pressure));
      model.set_boundary(
          Face::ZMax, BoundaryCondition::natural(thermal::SurfaceOrientation::Vertical,
                                                 board.width, board_ambient, pt.pressure));
      break;
    }
  }

  const auto sol = model.solve_steady();
  Level2BoardResult out;
  out.board = board.name;
  out.cell_count = model.grid().cell_count();
  out.max_temperature = sol.max_temperature;
  out.mean_temperature = model.region_mean(sol.temperatures, model.all_cells());
  out.energy_residual = sol.energy_residual;
  for (const Component& c : board.components) {
    const std::size_t i = std::min<std::size_t>(
        nx - 1, static_cast<std::size_t>(c.x / board.length * static_cast<double>(nx)));
    const std::size_t j = std::min<std::size_t>(
        ny - 1, static_cast<std::size_t>(c.y / board.width * static_cast<double>(ny)));
    out.component_local_temperature.push_back(
        sol.temperatures[model.grid().index(i, j, 0)]);
  }
  return out;
}

ThermalLevelsResult run_thermal_levels(const Equipment& eq, const Specification& spec,
                                       CoolingTechnology technology, std::size_t mesh) {
  ThermalLevelsResult out;
  out.level1 = run_level1(eq, spec, technology);
  const double board_ambient =
      (technology == CoolingTechnology::ConductionCooled)
          ? spec.ambient_temperature + 10.0
          : std::min(out.level1.internal_air_temperature, spec.local_ambient_limit + 60.0);

  std::vector<reliability::Part> bom;
  out.worst_junction = 0.0;
  for (const Module& m : eq.modules)
    for (const Board& b : m.boards) {
      auto l2 = run_level2(b, spec, technology, board_ambient, mesh);
      for (std::size_t ci = 0; ci < b.components.size(); ++ci) {
        const Component& c = b.components[ci];
        // Level 3: junction = local board temperature + attach + theta_jc.
        const double r_attach = 0.5;  // solder/TIM attach [K/W]
        Level3ComponentResult l3;
        l3.reference = m.name + "/" + b.name + "/" + c.reference;
        l3.junction_temperature =
            l2.component_local_temperature[ci] + c.power * (c.theta_jc + r_attach);
        l3.margin = c.junction_limit - l3.junction_temperature;
        l3.within_limit = l3.margin >= 0.0;
        out.worst_junction = std::max(out.worst_junction, l3.junction_temperature);
        out.level3.push_back(l3);

        reliability::Part p;
        p.reference = l3.reference;
        p.type = c.part_type;
        p.count = c.count;
        p.quality = c.quality;
        p.junction_temperature = l3.junction_temperature;
        bom.push_back(p);
      }
      out.level2.push_back(std::move(l2));
    }

  if (!bom.empty()) {
    out.mtbf = reliability::predict_mtbf(bom, spec.environment);
    out.mtbf_met = out.mtbf.mtbf_hours >= spec.mtbf_target_hours;
  }
  return out;
}

}  // namespace aeropack::core
