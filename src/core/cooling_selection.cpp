#include "core/cooling_selection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/units.hpp"
#include "materials/air.hpp"
#include "thermal/convection.hpp"
#include "thermal/forced_air.hpp"

namespace aeropack::core {

std::string to_string(CoolingTechnology t) {
  switch (t) {
    case CoolingTechnology::FreeConvection: return "free convection + radiation";
    case CoolingTechnology::DirectAirFlow: return "direct air flow (ARINC 600)";
    case CoolingTechnology::AirFlowAround: return "air flow around";
    case CoolingTechnology::ConductionCooled: return "conduction cooled";
    case CoolingTechnology::LiquidFlowThrough: return "liquid flow through";
    case CoolingTechnology::TwoPhase: return "two-phase (HP / LHP)";
  }
  throw std::logic_error("to_string(CoolingTechnology)");
}

namespace {
int complexity_rank(CoolingTechnology t) {
  switch (t) {
    case CoolingTechnology::FreeConvection: return 1;
    case CoolingTechnology::DirectAirFlow: return 2;
    case CoolingTechnology::AirFlowAround: return 2;
    case CoolingTechnology::ConductionCooled: return 3;
    case CoolingTechnology::TwoPhase: return 4;
    case CoolingTechnology::LiquidFlowThrough: return 5;
  }
  return 5;
}
}  // namespace

double technology_capability(CoolingTechnology t, const Equipment& eq,
                             const Specification& spec) {
  // Case-to-ambient temperature budget: keep the internal component ambient
  // at its limit; internal rise case->board-ambient is taken as ~40% of the
  // budget at Level 1 (a standard preliminary-design allowance).
  const double budget = spec.local_ambient_limit - spec.ambient_temperature;
  if (budget <= 0.0) return 0.0;
  const double case_rise = 0.6 * budget;
  const double t_case = spec.ambient_temperature + case_rise;
  const auto pt = materials::isa_atmosphere(spec.altitude);

  switch (t) {
    case CoolingTechnology::FreeConvection: {
      // Natural convection on the four vertical faces + top/bottom, plus
      // radiation to the surroundings.
      const double h_v = thermal::h_natural_vertical_plate(t_case, spec.ambient_temperature,
                                                           eq.height, pt.pressure);
      const double h_up = thermal::h_natural_horizontal_up(
          t_case, spec.ambient_temperature, eq.length * eq.width / (2.0 * (eq.length + eq.width)),
          pt.pressure);
      const double h_dn = thermal::h_natural_horizontal_down(
          t_case, spec.ambient_temperature, eq.length * eq.width / (2.0 * (eq.length + eq.width)),
          pt.pressure);
      const double h_r =
          thermal::h_radiation(t_case, spec.ambient_temperature, eq.chassis.emissivity);
      const double a_side = 2.0 * (eq.length + eq.width) * eq.height;
      const double a_flat = eq.length * eq.width;
      const double ua = (h_v + h_r) * a_side + (h_up + h_r) * a_flat + (h_dn + h_r) * a_flat;
      return ua * case_rise;
    }
    case CoolingTechnology::DirectAirFlow: {
      if (!spec.forced_air_available) return 0.0;
      // ARINC 600 budget: exhaust must stay below the internal ambient limit.
      // dT_air = Q / (mdot cp) with mdot = 220 kg/h/kW * Q: the air rise is
      // power-independent (~16 K), so capability is set by film rise over
      // the cards; estimate with the standard card channel.
      thermal::ArincAirSupply supply;
      supply.inlet_temperature = spec.ambient_temperature;
      supply.pressure = pt.pressure;
      const double air_rise = supply.air_rise(1000.0);  // per-kW rise, power independent
      if (spec.ambient_temperature + air_rise >= spec.local_ambient_limit) return 0.0;
      // Remaining budget is film rise across the card surface.
      const double film_budget = spec.local_ambient_limit - spec.ambient_temperature - air_rise;
      // Per-module card area and film coefficient at the standard flow.
      thermal::CardChannel chan;
      const std::size_t n_modules = std::max<std::size_t>(eq.modules.size(), 1);
      const double per_module = std::max(eq.total_power() / static_cast<double>(n_modules), 1.0);
      const auto hs = thermal::analyze_hot_spot(supply, chan, per_module,
                                                1.0 /*placeholder flux*/, 1.0,
                                                spec.local_ambient_limit);
      const double card_area = 2.0 * chan.card_width * chan.card_length;  // both faces
      return hs.h * card_area * film_budget * static_cast<double>(n_modules);
    }
    case CoolingTechnology::AirFlowAround: {
      if (!spec.forced_air_available) return 0.0;
      // Forced air over the sealed shell at a bay draft ~3 m/s.
      const double h = thermal::h_forced_flat_plate(3.0, eq.length, t_case, pt.pressure);
      return h * eq.surface_area() * case_rise;
    }
    case CoolingTechnology::ConductionCooled: {
      // Cards drained to two cold walls through wedge locks; wall at
      // ambient + 10 K (rack interface spec). Conduction budget per card
      // ~0.5 K/W drain resistance, wedge lock 0.3 K/W each side.
      const double wall_t = spec.ambient_temperature + 10.0;
      const double budget_cards = spec.local_ambient_limit - wall_t;
      if (budget_cards <= 0.0) return 0.0;
      const double r_per_card = 0.5 + 0.3 / 2.0;  // drain + two locks in parallel
      std::size_t n_cards = 0;
      for (const Module& m : eq.modules) n_cards += m.boards.size();
      n_cards = std::max<std::size_t>(n_cards, 1);
      return static_cast<double>(n_cards) * budget_cards / r_per_card;
    }
    case CoolingTechnology::LiquidFlowThrough: {
      // Cold plate UA ~ 50 W/K per equipment, coolant at ambient - 10 K.
      const double coolant_t = spec.ambient_temperature - 10.0;
      return 50.0 * (spec.local_ambient_limit - 20.0 - coolant_t);
    }
    case CoolingTechnology::TwoPhase: {
      // Heat pipes / LHP move the case budget to a remote sink with ~0.5 K/W
      // total transport resistance per 100 W string; capability limited by
      // transport, not the local film.
      const double r_transport = 0.5;
      return case_rise / r_transport * 2.0;  // two strings typical
    }
  }
  throw std::logic_error("technology_capability: unknown technology");
}

CoolingSelection select_cooling(const Equipment& eq, const Specification& spec) {
  CoolingSelection sel;
  const double demand = eq.total_power();
  for (CoolingTechnology t :
       {CoolingTechnology::FreeConvection, CoolingTechnology::DirectAirFlow,
        CoolingTechnology::AirFlowAround, CoolingTechnology::ConductionCooled,
        CoolingTechnology::TwoPhase, CoolingTechnology::LiquidFlowThrough}) {
    TechnologyAssessment a;
    a.technology = t;
    a.available = !(t == CoolingTechnology::DirectAirFlow && !spec.forced_air_available) &&
                  !(t == CoolingTechnology::AirFlowAround && !spec.forced_air_available);
    a.max_power = a.available ? technology_capability(t, eq, spec) : 0.0;
    a.complexity = complexity_rank(t);
    a.feasible = a.available && a.max_power >= demand;
    if (!a.available) a.note = "platform service not available";
    sel.assessments.push_back(a);
  }
  // Pick the simplest feasible option.
  std::stable_sort(sel.assessments.begin(), sel.assessments.end(),
                   [](const TechnologyAssessment& x, const TechnologyAssessment& y) {
                     return x.complexity < y.complexity;
                   });
  for (const auto& a : sel.assessments)
    if (a.feasible) {
      sel.selected = a.technology;
      sel.any_feasible = true;
      break;
    }
  return sel;
}

}  // namespace aeropack::core
