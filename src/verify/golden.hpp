// Golden-file regression framework. A test records named scalar results
// (figure ordinates, capability numbers, MTBF hours); the recorder either
// checks them against a committed JSON baseline or — when the
// AEROPACK_UPDATE_GOLDEN environment variable is set — rewrites the baseline
// in place. Mismatch reports end with the exact command to regenerate the
// goldens so a legitimate behavior change is a one-liner to accept.
//
// The JSON subset is a single flat object of "key": number pairs, written
// with round-trippable %.17g doubles and sorted keys so regeneration diffs
// stay minimal.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace aeropack::verify {

/// True when AEROPACK_UPDATE_GOLDEN is set to anything but "" or "0".
bool golden_update_requested();

/// Parse a flat {"key": number, ...} JSON file. Throws std::runtime_error on
/// missing file or malformed content.
std::map<std::string, double> read_golden_file(const std::string& path);

/// Write the map as sorted, round-trippable JSON. Throws on I/O failure.
void write_golden_file(const std::string& path, const std::map<std::string, double>& values);

class GoldenRecorder {
 public:
  /// Records compare against (or regenerate) `directory`/`name`.json.
  /// `ctest_label` is the test label named in the regeneration command a
  /// mismatch report prints — "verify" for the golden regression suite, but
  /// other tiers (e.g. the `obs` counter contracts) reuse the recorder
  /// against their own baseline directories.
  GoldenRecorder(std::string name, std::string directory, std::string ctest_label = "verify");

  /// Record one scalar under a unique key (throws on duplicates — a
  /// duplicate key silently overwriting would mask a test-authoring bug).
  void record(const std::string& key, double value);

  /// Finish the recording session. In update mode the baseline file is
  /// rewritten and an empty report is returned. Otherwise the baseline is
  /// loaded and every recorded value compared at `rel_tol` relative
  /// tolerance (with a tiny absolute floor near zero); the returned report
  /// is empty on success, else one line per mismatch / missing key / stale
  /// baseline key plus a final ready-to-run regeneration command.
  std::vector<std::string> finish(double rel_tol = 1e-9) const;

  const std::string& path() const { return path_; }
  const std::map<std::string, double>& values() const { return values_; }

 private:
  std::string name_;
  std::string path_;
  std::string label_;
  std::map<std::string, double> values_;
};

}  // namespace aeropack::verify
