// Method-of-manufactured-solutions (MMS) harness for the finite-volume
// conduction solver. An analytic temperature field T(x,y,z) (optionally
// decaying in time) is injected together with the source and boundary data
// that make it an exact solution of the continuous problem; the solver is
// run on a grid-refinement ladder and the observed convergence order is the
// slope of log(L2 error) vs log(h) fitted with numeric::polyfit.
//
// The FV scheme (cell-centered, half-cell Dirichlet coupling, midpoint
// source quadrature) is formally second order; the verification tier asserts
// the observed order stays >= ~1.9 for every code path (steady + transient,
// harmonic + arithmetic face conductances, uniform + smoothly graded k).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "numeric/polyfit.hpp"
#include "thermal/fv.hpp"

namespace aeropack::verify {

/// A steady manufactured problem on the box [0,lx]x[0,ly]x[0,lz]. The
/// boundary values of `temperature` must be constant per face (the canonical
/// cases use a product-of-sines bump that vanishes on every face), so the
/// discrete problem needs only the six default Dirichlet conditions.
struct MmsCase {
  std::string name;
  double lx = 1.0, ly = 1.0, lz = 1.0;
  std::function<double(double, double, double)> temperature;   ///< exact T [K]
  std::function<double(double, double, double)> conductivity;  ///< isotropic k [W/m K]
  std::function<double(double, double, double)> source;        ///< q''' = -div(k grad T) [W/m^3]
  double boundary_temperature = 300.0;  ///< T on all six faces [K]
};

/// Product-of-sines bump over a uniform conductivity:
///   T = t0 + amp sin(pi x/lx) sin(pi y/ly) sin(pi z/lz),  k = const.
MmsCase mms_uniform_k(double lx, double ly, double lz, double k, double t0, double amp);

/// Same temperature field over a smoothly graded conductivity
/// k(x) = k0 (1 + beta x/lx); the source picks up the grad-k cross term, so
/// harmonic and arithmetic face conductances genuinely differ on this case.
MmsCase mms_graded_k(double lx, double ly, double lz, double k0, double beta, double t0,
                     double amp);

/// One rung of the refinement ladder.
struct MmsPoint {
  std::size_t n = 0;       ///< cells per axis
  double h = 0.0;          ///< representative spacing lx/n
  double l2_error = 0.0;   ///< volume-weighted L2 error vs the exact field
  double max_error = 0.0;
};

struct MmsReport {
  std::string case_name;
  thermal::FaceConductanceScheme scheme = thermal::FaceConductanceScheme::HarmonicMean;
  std::vector<MmsPoint> ladder;
  double observed_order = 0.0;  ///< slope of log(l2_error) vs log(h)
  double fit_r_squared = 0.0;
};

/// Run the steady ladder: for each n in `ns`, solve the manufactured problem
/// on an n^3 uniform grid and measure the error against the exact field at
/// cell centers. `ns` must contain at least two rungs.
MmsReport mms_steady_order(const MmsCase& c, const std::vector<std::size_t>& ns,
                           thermal::FaceConductanceScheme scheme,
                           const numeric::IterativeOptions& linear = {10000, 1e-13});

/// Transient ladder riding the exact decaying eigenmode of the heat equation
/// on the unit box:
///   T(x,t) = t0 + amp e^{-lambda t} sin(pi x/lx) sin(pi y/ly) sin(pi z/lz),
///   lambda = (k/rho_cp) pi^2 (1/lx^2 + 1/ly^2 + 1/lz^2),
/// which needs no source term. Implicit Euler is O(dt), so each rung refines
/// the step as dt ~ h^2 (steps = steps0 (n/n0)^2) to keep the measured
/// spatial order clean; the error at t_end is compared in the weighted L2
/// norm as in the steady ladder.
MmsReport mms_transient_order(double lx, double ly, double lz, double k, double rho_cp,
                              double t0, double amp, double t_end,
                              const std::vector<std::size_t>& ns, std::size_t steps0,
                              thermal::FaceConductanceScheme scheme,
                              const numeric::IterativeOptions& linear = {10000, 1e-13});

/// Slope of log(l2_error) vs log(h) (degree-1 polyfit); shared by both
/// ladders and reusable for any external convergence study.
double observed_order(const std::vector<MmsPoint>& ladder, double* r_squared = nullptr);

/// One-line ladder summary ("n=8 h=1.25e-01 l2=3.2e-02 ...") for assertion
/// failure messages.
std::string describe(const MmsReport& report);

}  // namespace aeropack::verify
