#include "verify/cross_check.hpp"

#include <cmath>
#include <stdexcept>

#include "thermal/fins.hpp"
#include "thermal/network.hpp"

namespace aeropack::verify {

namespace {

using thermal::BoundaryCondition;
using thermal::Face;
using thermal::FvGrid;
using thermal::FvModel;
using thermal::FvOptions;

FvOptions tight_options(thermal::FaceConductanceScheme scheme) {
  FvOptions opts;
  opts.scheme = scheme;
  opts.linear.tolerance = 1e-13;
  return opts;
}

thermal::SteadyOptions network_options() {
  thermal::SteadyOptions opts;
  opts.tolerance = 1e-12;
  return opts;
}

/// Run the FV model twice and fill the shared result fields.
void solve_fv_twice(const FvModel& m, const FvOptions& opts, CrossCheckResult& r) {
  const auto first = m.solve_steady(opts);
  const auto repeat = m.solve_steady(opts);
  if (!first.converged || !repeat.converged)
    throw std::runtime_error("cross_check: FV solve did not converge");
  r.fv_field = first.temperatures;
  r.fv_field_repeat = repeat.temperatures;
  r.fv_structure_assemblies = first.structure_assemblies;
  r.fv_picard_iterations = first.picard_iterations;
}

}  // namespace

CrossCheckResult cross_check_slab(std::size_t cells, thermal::FaceConductanceScheme scheme) {
  if (cells < 2) throw std::invalid_argument("cross_check_slab: need >= 2 cells");
  const double length = 0.2, width = 0.04, thick = 0.01;  // [m]
  const double k = 140.0;                                 // [W/m K]
  const double t_left = 330.0, t_right = 300.0;           // [K]
  const double power = 25.0;                              // [W]
  const double area = width * thick;
  const double qv = power / (length * area);  // [W/m^3]
  const double dx = length / static_cast<double>(cells);

  CrossCheckResult r;
  r.name = "slab";

  // Analytic: T(x) = t_left + (t_right - t_left) x/L + qv/(2k) x (L - x),
  // evaluated at the mid cell's center.
  const std::size_t mid = cells / 2;
  const double x_mid = (static_cast<double>(mid) + 0.5) * dx;
  r.analytic = t_left + (t_right - t_left) * x_mid / length +
               qv / (2.0 * k) * x_mid * (length - x_mid);

  // Network: one node per cell center, axial conductances kA/dx, half-cell
  // couplings to the two boundary nodes, per-cell source load.
  {
    thermal::ThermalNetwork net;
    std::vector<thermal::NodeId> nodes;
    for (std::size_t i = 0; i < cells; ++i) {
      nodes.push_back(net.add_node("cell" + std::to_string(i)));
      net.add_heat_load(nodes.back(), qv * area * dx);
    }
    const auto left = net.add_boundary("left", t_left);
    const auto right = net.add_boundary("right", t_right);
    const double g_axial = k * area / dx;
    for (std::size_t i = 0; i + 1 < cells; ++i) net.add_conductor(nodes[i], nodes[i + 1], g_axial);
    net.add_conductor(left, nodes.front(), 2.0 * g_axial);
    net.add_conductor(right, nodes.back(), 2.0 * g_axial);
    const auto sol = net.solve_steady(network_options());
    if (!sol.converged) throw std::runtime_error("cross_check_slab: network did not converge");
    r.network = sol.temperatures[nodes[mid]];
  }

  // Finite volume: same bar discretized along x.
  FvModel m(FvGrid::uniform(length, width, thick, cells, 1, 1));
  m.set_conductivity(m.all_cells(), k, k, k);
  m.add_power(m.all_cells(), power);
  m.set_boundary(Face::XMin, BoundaryCondition::fixed(t_left));
  m.set_boundary(Face::XMax, BoundaryCondition::fixed(t_right));
  solve_fv_twice(m, tight_options(scheme), r);
  r.fv = r.fv_field[m.grid().index(mid, 0, 0)];
  return r;
}

CrossCheckResult cross_check_fin(std::size_t cells, thermal::FaceConductanceScheme scheme) {
  if (cells < 2) throw std::invalid_argument("cross_check_fin: need >= 2 cells");
  const double length = 0.12, width = 0.03, thick = 0.004;  // [m]
  const double k = 200.0;                                   // [W/m K]
  const double h = 25.0;                                    // [W/m^2 K]
  const double t_base = 350.0, t_air = 300.0;               // [K]
  const double area = width * thick;
  const double perimeter = 2.0 * (width + thick);
  const double dx = length / static_cast<double>(cells);

  CrossCheckResult r;
  r.name = "fin";

  // Analytic adiabatic-tip fin: theta(x) = theta_b cosh(m (L - x)) / cosh(mL),
  // at the tip cell's center.
  const double m_fin = thermal::fin_parameter(h, perimeter, k, area);
  const double x_tip = length - 0.5 * dx;
  r.analytic = t_air + (t_base - t_air) * std::cosh(m_fin * (length - x_tip)) /
                           std::cosh(m_fin * length);

  // Network: axial chain + per-node film conductance h P dx to the air.
  {
    thermal::ThermalNetwork net;
    std::vector<thermal::NodeId> nodes;
    for (std::size_t i = 0; i < cells; ++i)
      nodes.push_back(net.add_node("fin" + std::to_string(i)));
    const auto base = net.add_boundary("base", t_base);
    const auto air = net.add_boundary("air", t_air);
    const double g_axial = k * area / dx;
    for (std::size_t i = 0; i + 1 < cells; ++i) net.add_conductor(nodes[i], nodes[i + 1], g_axial);
    net.add_conductor(base, nodes.front(), 2.0 * g_axial);
    for (std::size_t i = 0; i < cells; ++i) net.add_conductor(nodes[i], air, h * perimeter * dx);
    const auto sol = net.solve_steady(network_options());
    if (!sol.converged) throw std::runtime_error("cross_check_fin: network did not converge");
    r.network = sol.temperatures[nodes.back()];
  }

  // Finite volume: bar along x, convecting lateral faces, adiabatic tip.
  FvModel m(FvGrid::uniform(length, width, thick, cells, 1, 1));
  m.set_conductivity(m.all_cells(), k, k, k);
  m.set_boundary(Face::XMin, BoundaryCondition::fixed(t_base));
  for (Face f : {Face::YMin, Face::YMax, Face::ZMin, Face::ZMax})
    m.set_boundary(f, BoundaryCondition::convection(h, t_air));
  solve_fv_twice(m, tight_options(scheme), r);
  r.fv = r.fv_field[m.grid().index(cells - 1, 0, 0)];
  return r;
}

CrossCheckResult cross_check_card(std::size_t layers, thermal::FaceConductanceScheme scheme) {
  if (layers < 4) throw std::invalid_argument("cross_check_card: need >= 4 layers");
  const double side = 0.08, stack = 0.006;        // [m]
  const double k = 18.0;                          // [W/m K] (laminate-ish)
  const double t_rail = 293.15;                   // [K]
  const double power = 12.0;                      // [W]
  const double r_contact = 2.0e-4;                // bond line [K m^2/W]
  const std::size_t contact_plane = layers / 2 - 1;
  const double area = side * side;
  const double dz = stack / static_cast<double>(layers);

  CrossCheckResult r;
  r.name = "card";

  // Analytic series path from the hot-face cell center to the rail: flux
  // enters the top face uniformly, so every resistance between the top cell
  // center and the fixed face carries the full power.
  const double n_interior_faces = static_cast<double>(layers - 1);
  const double resistance = (n_interior_faces * dz + 0.5 * dz) / (k * area) + r_contact / area;
  r.analytic = t_rail + power * resistance;

  // Network: per-layer chain with the contact resistance inserted in series
  // at the bond plane.
  {
    thermal::ThermalNetwork net;
    std::vector<thermal::NodeId> nodes;
    for (std::size_t i = 0; i < layers; ++i)
      nodes.push_back(net.add_node("layer" + std::to_string(i)));
    const auto rail = net.add_boundary("rail", t_rail);
    const double g_axial = k * area / dz;
    for (std::size_t i = 0; i + 1 < layers; ++i) {
      double g = g_axial;
      if (i == contact_plane) g = 1.0 / (1.0 / g_axial + r_contact / area);
      net.add_conductor(nodes[i], nodes[i + 1], g);
    }
    net.add_conductor(rail, nodes.front(), 2.0 * g_axial);
    net.add_heat_load(nodes.back(), power);
    const auto sol = net.solve_steady(network_options());
    if (!sol.converged) throw std::runtime_error("cross_check_card: network did not converge");
    r.network = sol.temperatures[nodes.back()];
  }

  // Finite volume: single column of layers along z, flux in at ZMax, rail at
  // ZMin, contact resistance on the bond plane.
  FvModel m(FvGrid::uniform(side, side, stack, 1, 1, layers));
  m.set_conductivity(m.all_cells(), k, k, k);
  m.add_interface_z(contact_plane, r_contact);
  m.set_boundary(Face::ZMin, BoundaryCondition::fixed(t_rail));
  m.set_boundary(Face::ZMax, BoundaryCondition::heat_flux(power / area));
  solve_fv_twice(m, tight_options(scheme), r);
  r.fv = r.fv_field[m.grid().index(0, 0, layers - 1)];
  return r;
}

thermal::FvModel nonlinear_box_model(std::size_t n) {
  if (n == 0) throw std::invalid_argument("nonlinear_box_model: n must be >= 1");
  FvModel m(FvGrid::uniform(0.1, 0.08, 0.02, n, n, std::max<std::size_t>(n / 2, 1)));
  m.set_conductivity(m.all_cells(), 15.0, 15.0, 3.0);
  const auto all = m.all_cells();
  // A hot corner patch plus a background load.
  thermal::CellRange hot = all;
  hot.i1 = std::max<std::size_t>(all.i1 / 2, 1);
  hot.j1 = std::max<std::size_t>(all.j1 / 2, 1);
  m.add_power(hot, 6.0);
  m.add_power(all, 2.0);
  m.set_boundary(Face::ZMin,
                 BoundaryCondition::natural(thermal::SurfaceOrientation::HorizontalUp, 0.1,
                                            293.15));
  m.set_boundary(Face::ZMax, BoundaryCondition::convection_radiation(6.0, 293.15, 0.8));
  m.set_boundary(Face::XMin, BoundaryCondition::convection(12.0, 293.15));
  return m;
}

}  // namespace aeropack::verify
