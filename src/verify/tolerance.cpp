#include "verify/tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace aeropack::verify {

double abs_error(double a, double b) { return std::fabs(a - b); }

double rel_error(double a, double b) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  if (scale == 0.0) return 0.0;
  return std::fabs(a - b) / scale;
}

bool rel_close_floor(double a, double b, double rel_tol, double abs_floor) {
  return std::fabs(a - b) <= rel_tol * std::max(std::fabs(a), std::fabs(b)) + abs_floor;
}

bool rel_close(double a, double b, double rel_tol) {
  return rel_close_floor(a, b, rel_tol, 1e-12);
}

namespace {
void check_sizes(const numeric::Vector& a, const numeric::Vector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("verify: field size mismatch in comparison");
}
}  // namespace

double max_abs_diff(const numeric::Vector& a, const numeric::Vector& b) {
  check_sizes(a, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

double max_rel_diff(const numeric::Vector& a, const numeric::Vector& b) {
  check_sizes(a, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) worst = std::max(worst, rel_error(a[i], b[i]));
  return worst;
}

bool bitwise_equal(const numeric::Vector& a, const numeric::Vector& b) {
  return a.size() == b.size() && first_bitwise_difference(a, b) == a.size();
}

std::size_t first_bitwise_difference(const numeric::Vector& a, const numeric::Vector& b) {
  check_sizes(a, b);
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) return i;
  return a.size();
}

double weighted_l2_diff(const numeric::Vector& a, const numeric::Vector& b,
                        const numeric::Vector& weights) {
  check_sizes(a, b);
  if (!weights.empty() && weights.size() != a.size())
    throw std::invalid_argument("verify: weight size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    const double d = a[i] - b[i];
    num += w * d * d;
    den += w;
  }
  if (den <= 0.0) throw std::invalid_argument("verify: non-positive total weight");
  return std::sqrt(num / den);
}

}  // namespace aeropack::verify
