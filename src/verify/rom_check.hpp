// ROM-vs-full-FV equivalence ladder: the compact-model counterpart of the
// MMS convergence ladders. One model, one spec, one input vector; the full
// FvModel steady solve is the reference, and the ladder evaluates the
// reduced model at every rank from 1 to the usable basis rank.
//
// The Galerkin projection is optimal in the operator's energy norm over the
// POD subspace, and the POD basis is nested — so the energy-norm error MUST
// be non-increasing as the rank grows. That is the monotone-decay contract
// the rom verify tier gates, with the per-rank errors golden-frozen on the
// canonical Fig. 2 board and SEB box models.
#pragma once

#include <cstddef>
#include <vector>

#include "mission/profile.hpp"
#include "rom/rom.hpp"
#include "thermal/fv.hpp"

namespace aeropack::verify {

struct RomLadderRung {
  std::size_t rank = 0;
  /// Relative L2 error of the reconstructed steady field vs. the FV field.
  double field_error = 0.0;
  /// Relative energy-norm (A-norm) error of the steady field — the metric
  /// Galerkin optimality makes monotone over nested bases.
  double energy_error = 0.0;
  /// Max absolute port-temperature error [K].
  double port_temp_error = 0.0;
  /// The ROM's own a-priori estimate (POD tail energy) at this rank.
  double estimate = 0.0;
};

struct RomLadderResult {
  std::vector<RomLadderRung> rungs;  ///< ranks ascending, 1..usable_rank
  /// True when energy_error is non-increasing across the whole ladder
  /// (within a 1 + 1e-9 roundoff factor).
  bool monotone = false;
  /// field_error of the highest rung (the full usable basis).
  double full_rank_field_error = 0.0;
  /// Reference FV solution energy residual [W] (solver health check).
  double fv_energy_residual = 0.0;
};

/// Run the ladder. The reference solve and every reduced evaluation use the
/// deterministic kernels, so the result is bit-identical across thread
/// counts. Throws what build_rom / apply_inputs throw on bad specs.
RomLadderResult rom_equivalence_ladder(const thermal::FvModel& model, const rom::RomSpec& spec,
                                       const rom::RomInputs& inputs,
                                       const rom::RomOptions& opts = {});

// --- Driven-transient ladder ---------------------------------------------
//
// The transient counterpart: one mission::Profile drives a tight fixed-dt
// full-FV reference march (thermal::FvTransientStepper + mission::drive_for)
// and, on the *same* time grid, a reduced march per rank
// (rom::RomTransientStepper + mission::drive_for_rom). Both fidelities ride
// core::march_fixed, so the ladder exercises exactly the engine/stepper
// pairing the mission layer uses in production. Errors are relative
// space-time L2 norms of the reconstructed field difference over the marched
// states (steps 1..N; the t = 0 states differ only by the projection of the
// uniform initial field and are excluded).

struct RomTransientRung {
  std::size_t rank = 0;
  /// Relative space-time L2 trace error of the reconstructed field history
  /// vs. the FV reference: sqrt(sum_s ||e_s||^2 / sum_s ||T_s||^2).
  double trace_error = 0.0;
  /// Relative L2 error of the final (horizon) field.
  double final_error = 0.0;
  /// The ROM's own a-priori estimate (POD tail energy) at this rank.
  double estimate = 0.0;
};

struct RomTransientLadderOptions {
  std::size_t reference_steps = 200;  ///< fixed-dt steps of the shared grid
  double t_initial = 293.15;          ///< uniform initial temperature [K]
  rom::RomOptions rom;                ///< build options (full usable basis is laddered)
  thermal::FvOptions fv;              ///< reference march options
  double reference_tolerance = 1e-10;  ///< CG tolerance of the reference march
};

struct RomTransientLadderResult {
  std::vector<RomTransientRung> rungs;  ///< ranks ascending, 1..usable_rank
  /// True when trace_error decays with rank within a 5% plateau slack per
  /// rung. Unlike the steady ladder's energy norm, no Galerkin-optimality
  /// theorem covers the marched trajectory, so adjacent rungs may wiggle
  /// sub-percent where the truncation tail flattens — the slack absorbs
  /// that while still catching any real degradation of nested bases.
  bool monotone = false;
  double dt = 0.0;           ///< shared step size [s]
  std::size_t steps = 0;     ///< reference_steps actually marched
  /// trace_error of the highest rung (the full usable basis).
  double full_rank_trace_error = 0.0;
};

/// Run the driven-transient ladder. The profile must keep h_scale == 1
/// (mission::drive_for_rom's constraint); DO-160 thermal shock is the
/// canonical choice. Deterministic at any thread count.
RomTransientLadderResult rom_transient_ladder(const thermal::FvModel& model,
                                              const rom::RomSpec& spec,
                                              const rom::RomInputs& base_inputs,
                                              const mission::Profile& profile,
                                              const RomTransientLadderOptions& opts = {});

}  // namespace aeropack::verify
