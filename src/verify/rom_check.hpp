// ROM-vs-full-FV equivalence ladder: the compact-model counterpart of the
// MMS convergence ladders. One model, one spec, one input vector; the full
// FvModel steady solve is the reference, and the ladder evaluates the
// reduced model at every rank from 1 to the usable basis rank.
//
// The Galerkin projection is optimal in the operator's energy norm over the
// POD subspace, and the POD basis is nested — so the energy-norm error MUST
// be non-increasing as the rank grows. That is the monotone-decay contract
// the rom verify tier gates, with the per-rank errors golden-frozen on the
// canonical Fig. 2 board and SEB box models.
#pragma once

#include <cstddef>
#include <vector>

#include "rom/rom.hpp"

namespace aeropack::verify {

struct RomLadderRung {
  std::size_t rank = 0;
  /// Relative L2 error of the reconstructed steady field vs. the FV field.
  double field_error = 0.0;
  /// Relative energy-norm (A-norm) error of the steady field — the metric
  /// Galerkin optimality makes monotone over nested bases.
  double energy_error = 0.0;
  /// Max absolute port-temperature error [K].
  double port_temp_error = 0.0;
  /// The ROM's own a-priori estimate (POD tail energy) at this rank.
  double estimate = 0.0;
};

struct RomLadderResult {
  std::vector<RomLadderRung> rungs;  ///< ranks ascending, 1..usable_rank
  /// True when energy_error is non-increasing across the whole ladder
  /// (within a 1 + 1e-9 roundoff factor).
  bool monotone = false;
  /// field_error of the highest rung (the full usable basis).
  double full_rank_field_error = 0.0;
  /// Reference FV solution energy residual [W] (solver health check).
  double fv_energy_residual = 0.0;
};

/// Run the ladder. The reference solve and every reduced evaluation use the
/// deterministic kernels, so the result is bit-identical across thread
/// counts. Throws what build_rom / apply_inputs throw on bad specs.
RomLadderResult rom_equivalence_ladder(const thermal::FvModel& model, const rom::RomSpec& spec,
                                       const rom::RomInputs& inputs,
                                       const rom::RomOptions& opts = {});

}  // namespace aeropack::verify
