#include "verify/mms.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "materials/solid.hpp"
#include "verify/tolerance.hpp"

namespace aeropack::verify {

namespace {
constexpr double kPi = 3.14159265358979323846;

double bump(double x, double y, double z, const MmsCase& c) {
  return std::sin(kPi * x / c.lx) * std::sin(kPi * y / c.ly) * std::sin(kPi * z / c.lz);
}
}  // namespace

MmsCase mms_uniform_k(double lx, double ly, double lz, double k, double t0, double amp) {
  if (k <= 0.0) throw std::invalid_argument("mms_uniform_k: k must be positive");
  MmsCase c;
  c.name = "uniform-k";
  c.lx = lx;
  c.ly = ly;
  c.lz = lz;
  c.boundary_temperature = t0;
  const double lap = kPi * kPi * (1.0 / (lx * lx) + 1.0 / (ly * ly) + 1.0 / (lz * lz));
  c.temperature = [c, t0, amp](double x, double y, double z) {
    return t0 + amp * bump(x, y, z, c);
  };
  c.conductivity = [k](double, double, double) { return k; };
  // -div(k grad T) = k lap * amp * bump for constant k.
  c.source = [c, k, amp, lap](double x, double y, double z) {
    return k * lap * amp * bump(x, y, z, c);
  };
  return c;
}

MmsCase mms_graded_k(double lx, double ly, double lz, double k0, double beta, double t0,
                     double amp) {
  if (k0 <= 0.0 || 1.0 + beta <= 0.0)
    throw std::invalid_argument("mms_graded_k: conductivity must stay positive");
  MmsCase c;
  c.name = "graded-k";
  c.lx = lx;
  c.ly = ly;
  c.lz = lz;
  c.boundary_temperature = t0;
  const double lap = kPi * kPi * (1.0 / (lx * lx) + 1.0 / (ly * ly) + 1.0 / (lz * lz));
  c.temperature = [c, t0, amp](double x, double y, double z) {
    return t0 + amp * bump(x, y, z, c);
  };
  c.conductivity = [k0, beta, lx](double x, double, double) {
    return k0 * (1.0 + beta * x / lx);
  };
  // q''' = -div(k grad T) = k lap T' - (dk/dx) dT/dx with T' the bump part:
  // dT/dx = amp (pi/lx) cos(pi x/lx) sin sin, dk/dx = k0 beta / lx.
  c.source = [c, k0, beta, amp, lap, lx](double x, double y, double z) {
    const double k = k0 * (1.0 + beta * x / lx);
    const double dkdx = k0 * beta / lx;
    const double dtdx = amp * (kPi / c.lx) * std::cos(kPi * x / c.lx) *
                        std::sin(kPi * y / c.ly) * std::sin(kPi * z / c.lz);
    return k * lap * amp * bump(x, y, z, c) - dkdx * dtdx;
  };
  return c;
}

namespace {

thermal::FvModel build_model(const MmsCase& c, std::size_t n) {
  thermal::FvModel m(thermal::FvGrid::uniform(c.lx, c.ly, c.lz, n, n, n));
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const double kv = c.conductivity(m.grid().x_center(i), m.grid().y_center(j),
                                         m.grid().z_center(k));
        m.set_conductivity({i, i + 1, j, j + 1, k, k + 1}, kv, kv, kv);
      }
  for (thermal::Face f : {thermal::Face::XMin, thermal::Face::XMax, thermal::Face::YMin,
                          thermal::Face::YMax, thermal::Face::ZMin, thermal::Face::ZMax})
    m.set_boundary(f, thermal::BoundaryCondition::fixed(c.boundary_temperature));
  return m;
}

MmsPoint measure(const thermal::FvModel& m, const numeric::Vector& numerical,
                 const std::function<double(double, double, double)>& exact, std::size_t n) {
  const auto& g = m.grid();
  numeric::Vector reference(g.cell_count());
  numeric::Vector volumes(g.cell_count());
  for (std::size_t k = 0; k < g.nz(); ++k)
    for (std::size_t j = 0; j < g.ny(); ++j)
      for (std::size_t i = 0; i < g.nx(); ++i) {
        const std::size_t c = g.index(i, j, k);
        reference[c] = exact(g.x_center(i), g.y_center(j), g.z_center(k));
        volumes[c] = g.cell_volume(i, j, k);
      }
  MmsPoint p;
  p.n = n;
  p.h = g.lx() / static_cast<double>(g.nx());
  p.l2_error = weighted_l2_diff(numerical, reference, volumes);
  p.max_error = max_abs_diff(numerical, reference);
  return p;
}

}  // namespace

double observed_order(const std::vector<MmsPoint>& ladder, double* r_squared) {
  if (ladder.size() < 2)
    throw std::invalid_argument("observed_order: need at least two ladder rungs");
  numeric::Vector log_h(ladder.size()), log_e(ladder.size());
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i].l2_error <= 0.0)
      throw std::domain_error("observed_order: zero error on a rung (exact to roundoff?)");
    log_h[i] = std::log(ladder[i].h);
    log_e[i] = std::log(ladder[i].l2_error);
  }
  const auto fit = numeric::polyfit(log_h, log_e, 1);
  if (r_squared) *r_squared = fit.r_squared;
  return fit.coefficients[1];
}

MmsReport mms_steady_order(const MmsCase& c, const std::vector<std::size_t>& ns,
                           thermal::FaceConductanceScheme scheme,
                           const numeric::IterativeOptions& linear) {
  MmsReport report;
  report.case_name = c.name;
  report.scheme = scheme;
  for (std::size_t n : ns) {
    thermal::FvModel m = build_model(c, n);
    m.add_power_density(c.source);
    thermal::FvOptions opts;
    opts.scheme = scheme;
    opts.linear = linear;
    const auto sol = m.solve_steady(opts);
    if (!sol.converged)
      throw std::runtime_error("mms_steady_order: solver did not converge at n=" +
                               std::to_string(n));
    report.ladder.push_back(measure(m, sol.temperatures, c.temperature, n));
  }
  report.observed_order = observed_order(report.ladder, &report.fit_r_squared);
  return report;
}

MmsReport mms_transient_order(double lx, double ly, double lz, double k, double rho_cp,
                              double t0, double amp, double t_end,
                              const std::vector<std::size_t>& ns, std::size_t steps0,
                              thermal::FaceConductanceScheme scheme,
                              const numeric::IterativeOptions& linear) {
  if (rho_cp <= 0.0 || t_end <= 0.0 || steps0 == 0 || ns.empty())
    throw std::invalid_argument("mms_transient_order: bad parameters");
  // T(x,t) = t0 + amp e^{-lambda t} bump(x); lambda is the fundamental decay
  // rate of the box, so the march needs no manufactured source at all.
  MmsCase c = mms_uniform_k(lx, ly, lz, k, t0, amp);
  const double lambda = (k / rho_cp) * kPi * kPi *
                        (1.0 / (lx * lx) + 1.0 / (ly * ly) + 1.0 / (lz * lz));

  materials::SolidMaterial mat;
  mat.name = "mms";
  mat.conductivity = k;
  mat.conductivity_through = k;
  mat.density = rho_cp;  // rho * cp carried as density x unit specific heat
  mat.specific_heat = 1.0;

  MmsReport report;
  report.case_name = "transient-decay";
  report.scheme = scheme;
  const double n0 = static_cast<double>(ns.front());
  for (std::size_t n : ns) {
    thermal::FvModel m = build_model(c, n);
    m.set_material(m.all_cells(), mat);
    // set_material resets conductivity too; it is uniform here, so rebuild is
    // consistent with the case definition.
    const auto& g = m.grid();
    numeric::Vector initial(g.cell_count());
    for (std::size_t kk = 0; kk < g.nz(); ++kk)
      for (std::size_t j = 0; j < g.ny(); ++j)
        for (std::size_t i = 0; i < g.nx(); ++i)
          initial[g.index(i, j, kk)] =
              c.temperature(g.x_center(i), g.y_center(j), g.z_center(kk));

    // dt ~ h^2 keeps the O(dt) implicit-Euler error scaling with the O(h^2)
    // spatial error, so the fitted slope measures the spatial order cleanly.
    const double ratio = static_cast<double>(n) / n0;
    const auto steps =
        static_cast<std::size_t>(std::lround(static_cast<double>(steps0) * ratio * ratio));
    const double dt = t_end / static_cast<double>(steps);

    thermal::FvOptions opts;
    opts.scheme = scheme;
    opts.linear = linear;
    const auto out = m.solve_transient(t_end, dt, initial, opts);
    const double t_final = out.times.back();
    const auto exact_final = [&](double x, double y, double z) {
      return t0 + amp * std::exp(-lambda * t_final) * bump(x, y, z, c);
    };
    report.ladder.push_back(measure(m, out.temperatures.back(), exact_final, n));
  }
  report.observed_order = observed_order(report.ladder, &report.fit_r_squared);
  return report;
}

std::string describe(const MmsReport& report) {
  std::string out = report.case_name + " (" +
                    (report.scheme == thermal::FaceConductanceScheme::HarmonicMean
                         ? "harmonic"
                         : "arithmetic") +
                    "):";
  char buf[96];
  for (const MmsPoint& p : report.ladder) {
    std::snprintf(buf, sizeof(buf), " [n=%zu h=%.3e l2=%.3e max=%.3e]", p.n, p.h, p.l2_error,
                  p.max_error);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " order=%.3f r2=%.5f", report.observed_order,
                report.fit_r_squared);
  out += buf;
  return out;
}

}  // namespace aeropack::verify
