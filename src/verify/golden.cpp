#include "verify/golden.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "verify/tolerance.hpp"

namespace aeropack::verify {

bool golden_update_requested() {
  const char* v = std::getenv("AEROPACK_UPDATE_GOLDEN");
  return v != nullptr && std::strcmp(v, "") != 0 && std::strcmp(v, "0") != 0;
}

namespace {

[[noreturn]] void malformed(const std::string& path, const std::string& why) {
  throw std::runtime_error("golden file " + path + ": " + why);
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

std::string parse_string(const std::string& s, std::size_t& i, const std::string& path) {
  if (i >= s.size() || s[i] != '"') malformed(path, "expected '\"'");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) malformed(path, "dangling escape");
    }
    out += s[i++];
  }
  if (i >= s.size()) malformed(path, "unterminated string");
  ++i;  // closing quote
  return out;
}

}  // namespace

std::map<std::string, double> read_golden_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("golden file " + path +
                             ": missing (run with AEROPACK_UPDATE_GOLDEN=1 to create it)");
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();

  std::map<std::string, double> values;
  std::size_t i = 0;
  skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') malformed(path, "expected '{'");
  ++i;
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') return values;  // empty object
  while (true) {
    skip_ws(s, i);
    const std::string key = parse_string(s, i, path);
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') malformed(path, "expected ':' after key " + key);
    ++i;
    skip_ws(s, i);
    char* end = nullptr;
    const double v = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) malformed(path, "expected number for key " + key);
    i = static_cast<std::size_t>(end - s.c_str());
    if (!values.emplace(key, v).second) malformed(path, "duplicate key " + key);
    skip_ws(s, i);
    if (i >= s.size()) malformed(path, "unterminated object");
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == '}') break;
    malformed(path, "expected ',' or '}'");
  }
  return values;
}

void write_golden_file(const std::string& path, const std::map<std::string, double>& values) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("golden file " + path + ": cannot open for writing");
  out << "{\n";
  std::size_t emitted = 0;
  char num[64];
  for (const auto& [key, value] : values) {
    std::snprintf(num, sizeof(num), "%.17g", value);
    out << "  \"" << key << "\": " << num;
    out << (++emitted < values.size() ? ",\n" : "\n");
  }
  out << "}\n";
  if (!out) throw std::runtime_error("golden file " + path + ": write failed");
}

GoldenRecorder::GoldenRecorder(std::string name, std::string directory, std::string ctest_label)
    : name_(std::move(name)), path_(std::move(directory)), label_(std::move(ctest_label)) {
  if (!path_.empty() && path_.back() != '/') path_ += '/';
  path_ += name_ + ".json";
}

void GoldenRecorder::record(const std::string& key, double value) {
  if (!values_.emplace(key, value).second)
    throw std::logic_error("GoldenRecorder: duplicate key " + key);
}

std::vector<std::string> GoldenRecorder::finish(double rel_tol) const {
  if (golden_update_requested()) {
    write_golden_file(path_, values_);
    return {};
  }
  std::vector<std::string> report;
  std::map<std::string, double> baseline;
  try {
    baseline = read_golden_file(path_);
  } catch (const std::exception& e) {
    report.emplace_back(e.what());
  }
  if (report.empty()) {
    char line[256];
    for (const auto& [key, value] : values_) {
      const auto it = baseline.find(key);
      if (it == baseline.end()) {
        report.push_back("missing golden key: " + key);
        continue;
      }
      if (!rel_close(value, it->second, rel_tol)) {
        std::snprintf(line, sizeof(line),
                      "golden mismatch: %s  baseline=%.17g  current=%.17g  rel_err=%.3e",
                      key.c_str(), it->second, value, rel_error(value, it->second));
        report.emplace_back(line);
      }
    }
    for (const auto& [key, value] : baseline)
      if (values_.find(key) == values_.end())
        report.push_back("stale golden key (no longer recorded): " + key);
  }
  if (!report.empty())
    report.push_back("to accept the new values, rerun with: AEROPACK_UPDATE_GOLDEN=1 ctest -L " +
                     label_ + " -R " + name_ + " && git diff " + path_);
  return report;
}

}  // namespace aeropack::verify
