#include "verify/rom_check.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::verify {

using numeric::Vector;

RomLadderResult rom_equivalence_ladder(const thermal::FvModel& model, const rom::RomSpec& spec,
                                       const rom::RomInputs& inputs,
                                       const rom::RomOptions& opts) {
  // Full-order reference: the configured model solved tight, plus its
  // operator for the energy-norm error metric.
  thermal::FvModel reference = model;
  rom::apply_inputs(reference, spec, inputs);
  thermal::FvOptions fv = opts.fv;
  fv.linear.tolerance = opts.snapshot_tolerance;
  const thermal::FvSolution sol = reference.solve_steady(fv);
  if (!sol.converged)
    throw std::runtime_error("rom_equivalence_ladder: reference FV solve did not converge");
  const thermal::LinearSteadySystem sys = reference.linearize_steady(fv);

  const Vector fv_ports = rom::port_surface_temperatures(reference, spec, sol.temperatures);
  const double fv_norm = numeric::parallel_norm2(sol.temperatures);
  Vector a_t = sys.matrix.multiply(sol.temperatures);
  const double fv_energy = std::sqrt(numeric::parallel_dot(sol.temperatures, a_t));

  const rom::RomModel full = rom::build_rom(model, spec, opts);

  RomLadderResult out;
  out.fv_energy_residual = sol.energy_residual;
  for (std::size_t r = 1; r <= full.usable_rank(); ++r) {
    const rom::RomModel truncated = full.at_rank(r);
    const rom::RomSteadyResult steady = truncated.steady(inputs);
    const Vector field = truncated.reconstruct(steady.reduced_coordinates);

    Vector err = field;
    numeric::parallel_axpy(-1.0, sol.temperatures, err);
    const Vector a_e = sys.matrix.multiply(err);

    RomLadderRung rung;
    rung.rank = r;
    rung.field_error = numeric::parallel_norm2(err) / fv_norm;
    rung.energy_error = std::sqrt(numeric::parallel_dot(err, a_e)) / fv_energy;
    for (std::size_t p = 0; p < fv_ports.size(); ++p)
      rung.port_temp_error =
          std::max(rung.port_temp_error, std::abs(steady.port_temperatures[p] - fv_ports[p]));
    rung.estimate = truncated.error_estimate();
    out.rungs.push_back(rung);
  }

  out.monotone = true;
  for (std::size_t i = 1; i < out.rungs.size(); ++i)
    if (out.rungs[i].energy_error > out.rungs[i - 1].energy_error * (1.0 + 1e-9))
      out.monotone = false;
  if (!out.rungs.empty()) out.full_rank_field_error = out.rungs.back().field_error;
  return out;
}

}  // namespace aeropack::verify
