#include "verify/rom_check.hpp"

#include <cmath>
#include <stdexcept>

#include "core/transient_engine.hpp"
#include "mission/transient.hpp"
#include "numeric/parallel.hpp"
#include "numeric/sparse.hpp"
#include "rom/transient.hpp"

namespace aeropack::verify {

using numeric::Vector;

RomLadderResult rom_equivalence_ladder(const thermal::FvModel& model, const rom::RomSpec& spec,
                                       const rom::RomInputs& inputs,
                                       const rom::RomOptions& opts) {
  // Full-order reference: the configured model solved tight, plus its
  // operator for the energy-norm error metric.
  thermal::FvModel reference = model;
  rom::apply_inputs(reference, spec, inputs);
  thermal::FvOptions fv = opts.fv;
  fv.linear.tolerance = opts.snapshot_tolerance;
  const thermal::FvSolution sol = reference.solve_steady(fv);
  if (!sol.converged)
    throw std::runtime_error("rom_equivalence_ladder: reference FV solve did not converge");
  const thermal::LinearSteadySystem sys = reference.linearize_steady(fv);

  const Vector fv_ports = rom::port_surface_temperatures(reference, spec, sol.temperatures);
  const double fv_norm = numeric::parallel_norm2(sol.temperatures);
  Vector a_t = sys.matrix.multiply(sol.temperatures);
  const double fv_energy = std::sqrt(numeric::parallel_dot(sol.temperatures, a_t));

  const rom::RomModel full = rom::build_rom(model, spec, opts);

  RomLadderResult out;
  out.fv_energy_residual = sol.energy_residual;
  for (std::size_t r = 1; r <= full.usable_rank(); ++r) {
    const rom::RomModel truncated = full.at_rank(r);
    const rom::RomSteadyResult steady = truncated.steady(inputs);
    const Vector field = truncated.reconstruct(steady.reduced_coordinates);

    Vector err = field;
    numeric::parallel_axpy(-1.0, sol.temperatures, err);
    const Vector a_e = sys.matrix.multiply(err);

    RomLadderRung rung;
    rung.rank = r;
    rung.field_error = numeric::parallel_norm2(err) / fv_norm;
    rung.energy_error = std::sqrt(numeric::parallel_dot(err, a_e)) / fv_energy;
    for (std::size_t p = 0; p < fv_ports.size(); ++p)
      rung.port_temp_error =
          std::max(rung.port_temp_error, std::abs(steady.port_temperatures[p] - fv_ports[p]));
    rung.estimate = truncated.error_estimate();
    out.rungs.push_back(rung);
  }

  out.monotone = true;
  for (std::size_t i = 1; i < out.rungs.size(); ++i)
    if (out.rungs[i].energy_error > out.rungs[i - 1].energy_error * (1.0 + 1e-9))
      out.monotone = false;
  if (!out.rungs.empty()) out.full_rank_field_error = out.rungs.back().field_error;
  return out;
}

RomTransientLadderResult rom_transient_ladder(const thermal::FvModel& model,
                                              const rom::RomSpec& spec,
                                              const rom::RomInputs& base_inputs,
                                              const mission::Profile& profile,
                                              const RomTransientLadderOptions& opts) {
  if (opts.reference_steps == 0)
    throw std::invalid_argument("rom_transient_ladder: reference_steps must be > 0");
  const double t_end = profile.total_duration();
  const double dt = t_end / static_cast<double>(opts.reference_steps);

  // Full-order reference: the ROM-layout model (ports + maps, everything
  // else adiabatic) marched tight through the profile on the shared grid.
  thermal::FvModel reference = model;
  rom::apply_inputs(reference, spec, base_inputs);
  thermal::FvOptions fv = opts.fv;
  fv.linear.tolerance = opts.reference_tolerance;
  const thermal::FvDrive fv_drive = mission::drive_for(profile);
  thermal::FvTransientStepper fv_stepper(reference, fv);
  fv_stepper.set_drive(&fv_drive);

  const std::size_t n = fv_stepper.state_size();
  numeric::Vector temps(n, opts.t_initial);
  std::vector<numeric::Vector> fv_fields;
  fv_fields.reserve(opts.reference_steps);
  core::march_fixed(fv_stepper, temps, t_end, dt,
                    [&](double, const numeric::Vector& field) { fv_fields.push_back(field); });

  double ref_norm2 = 0.0;
  for (const numeric::Vector& field : fv_fields) {
    const double norm = numeric::parallel_norm2(field);
    ref_norm2 += norm * norm;
  }
  const double final_norm = numeric::parallel_norm2(fv_fields.back());

  const rom::RomModel full = rom::build_rom(model, spec, opts.rom);
  const rom::RomDrive rom_drive = mission::drive_for_rom(profile, base_inputs);

  RomTransientLadderResult out;
  out.dt = dt;
  out.steps = fv_fields.size();
  for (std::size_t r = 1; r <= full.usable_rank(); ++r) {
    const rom::RomModel truncated = full.at_rank(r);
    rom::RomTransientStepper stepper(truncated, base_inputs, rom_drive);
    numeric::Vector y = stepper.initial_state(opts.t_initial);

    RomTransientRung rung;
    rung.rank = r;
    double err_norm2 = 0.0;
    std::size_t s = 0;
    core::march_fixed(stepper, y, t_end, dt, [&](double, const numeric::Vector& state) {
      numeric::Vector err = truncated.reconstruct(state);
      numeric::parallel_axpy(-1.0, fv_fields[s], err);
      const double norm = numeric::parallel_norm2(err);
      err_norm2 += norm * norm;
      if (s + 1 == fv_fields.size()) rung.final_error = norm / final_norm;
      ++s;
    });
    rung.trace_error = std::sqrt(err_norm2 / ref_norm2);
    rung.estimate = truncated.error_estimate();
    out.rungs.push_back(rung);
  }

  // Decay contract: see RomTransientLadderResult::monotone for why the
  // driven ladder carries a plateau slack the steady energy-norm ladder
  // does not need.
  out.monotone = true;
  for (std::size_t i = 1; i < out.rungs.size(); ++i)
    if (out.rungs[i].trace_error > out.rungs[i - 1].trace_error * 1.05) out.monotone = false;
  if (!out.rungs.empty()) out.full_rank_trace_error = out.rungs.back().trace_error;
  return out;
}

}  // namespace aeropack::verify
