// Error metrics shared by every verification tier: relative/absolute error,
// toleranced closeness predicates (usable directly in EXPECT_PRED3), and
// bitwise field comparison for the determinism contracts (cached vs cold
// solves, thread-count sweeps) where "close" is not good enough.
#pragma once

#include <cstddef>

#include "numeric/dense.hpp"

namespace aeropack::verify {

/// |a - b|.
double abs_error(double a, double b);

/// |a - b| / max(|a|, |b|); zero when both are zero.
double rel_error(double a, double b);

/// True when |a - b| <= rel_tol * max(|a|, |b|) + abs_floor. The absolute
/// floor keeps near-zero comparisons meaningful (a pure relative test on
/// values straddling zero never passes).
bool rel_close_floor(double a, double b, double rel_tol, double abs_floor);

/// rel_close_floor with a 1e-12 floor. Deliberately NOT an overload so the
/// bare name resolves in gtest's EXPECT_PRED3(rel_close, a, b, tol).
bool rel_close(double a, double b, double rel_tol);

/// Largest |a[i] - b[i]| over two equal-length fields; throws on mismatch.
double max_abs_diff(const numeric::Vector& a, const numeric::Vector& b);

/// Largest rel_error(a[i], b[i]) over two equal-length fields.
double max_rel_diff(const numeric::Vector& a, const numeric::Vector& b);

/// True when the two fields are identical to the last bit (memcmp-style
/// double equality; +0.0 and -0.0 differ, NaN never matches). This is the
/// contract for deterministic reductions across thread counts and for
/// repeated solves of the same model.
bool bitwise_equal(const numeric::Vector& a, const numeric::Vector& b);

/// Index of the first bitwise difference, or a.size() when equal.
std::size_t first_bitwise_difference(const numeric::Vector& a, const numeric::Vector& b);

/// Volume-weighted (or plain when weights empty) L2 norm of the difference
/// field: sqrt(sum w_i (a_i - b_i)^2 / sum w_i). The manufactured-solutions
/// ladder measures discretization error in this norm.
double weighted_l2_diff(const numeric::Vector& a, const numeric::Vector& b,
                        const numeric::Vector& weights = {});

}  // namespace aeropack::verify
