// Cross-solver equivalence checks: one physical problem solved three ways —
// closed-form analytic, lumped ThermalNetwork chain, and the 3-D FvModel —
// with toleranced agreement on a headline scalar. This is the paper's Fig. 4
// model-level contract made executable: the Level-1 network and Level-2/3
// finite-volume models must tell the same story where their domains overlap.
//
// Each family also returns the FV field solved twice on the same model so
// callers can assert the determinism contract (cached assembly + warm-started
// CG must reproduce a cold solve bit-for-bit).
#pragma once

#include <cstddef>
#include <string>

#include "numeric/dense.hpp"
#include "thermal/fv.hpp"

namespace aeropack::verify {

struct CrossCheckResult {
  std::string name;
  /// The family's headline scalar [K] from each model level.
  double analytic = 0.0;
  double network = 0.0;
  double fv = 0.0;
  /// FV field from the first solve and from an identical repeat solve.
  numeric::Vector fv_field;
  numeric::Vector fv_field_repeat;
  /// Assembly-cache counter from the FV solve (must be 1: one symbolic
  /// assembly regardless of Picard pass count).
  std::size_t fv_structure_assemblies = 0;
  std::size_t fv_picard_iterations = 0;
};

/// 1-D slab, fixed temperatures at both ends, uniform volumetric source.
/// Headline scalar: temperature at the cell nearest the midplane. The
/// network chain mirrors the FV discretization (half-cell end couplings), so
/// network and FV agree to solver tolerance while the analytic parabola
/// differs only by the O(h^2) discretization error.
CrossCheckResult cross_check_slab(std::size_t cells,
                                  thermal::FaceConductanceScheme scheme =
                                      thermal::FaceConductanceScheme::HarmonicMean);

/// Straight rectangular fin: fixed base, convecting lateral faces, adiabatic
/// tip. Headline scalar: tip temperature vs the cosh/cosh fin solution.
CrossCheckResult cross_check_fin(std::size_t cells,
                                 thermal::FaceConductanceScheme scheme =
                                     thermal::FaceConductanceScheme::HarmonicMean);

/// Through-thickness conduction card: prescribed heat flux on the component
/// face, a bond-line contact resistance mid-stack (FvModel::add_interface_z),
/// fixed cold rail on the far face. Headline scalar: hot-face cell
/// temperature vs the series-resistance sum.
CrossCheckResult cross_check_card(std::size_t layers,
                                  thermal::FaceConductanceScheme scheme =
                                      thermal::FaceConductanceScheme::HarmonicMean);

/// A small box with nonlinear boundaries (ConvectionRadiation + natural
/// convection) and an interior source: no closed form, but it drives the
/// Picard loop through several warm-started passes, which is exactly the
/// path the determinism and thread-sweep suites need to pin down.
thermal::FvModel nonlinear_box_model(std::size_t n);

}  // namespace aeropack::verify
