#include "thermal/fv.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/transient_engine.hpp"
#include "exec/context.hpp"
#include "numeric/hashing.hpp"
#include "numeric/parallel.hpp"
#include "obs/registry.hpp"

namespace aeropack::thermal {

using numeric::Vector;

// --- FvGrid -----------------------------------------------------------------

FvGrid::FvGrid(Vector dx, Vector dy, Vector dz)
    : dx_(std::move(dx)), dy_(std::move(dy)), dz_(std::move(dz)) {
  if (dx_.empty() || dy_.empty() || dz_.empty())
    throw std::invalid_argument("FvGrid: empty axis");
  for (const Vector* v : {&dx_, &dy_, &dz_})
    for (double d : *v)
      if (d <= 0.0) throw std::invalid_argument("FvGrid: cell sizes must be positive");
}

FvGrid FvGrid::uniform(double lx, double ly, double lz, std::size_t nx, std::size_t ny,
                       std::size_t nz) {
  if (lx <= 0.0 || ly <= 0.0 || lz <= 0.0 || nx == 0 || ny == 0 || nz == 0)
    throw std::invalid_argument("FvGrid::uniform: invalid extents");
  return FvGrid(Vector(nx, lx / static_cast<double>(nx)), Vector(ny, ly / static_cast<double>(ny)),
                Vector(nz, lz / static_cast<double>(nz)));
}

double FvGrid::x_center(std::size_t i) const {
  double acc = 0.0;
  for (std::size_t a = 0; a < i; ++a) acc += dx_[a];
  return acc + 0.5 * dx_[i];
}
double FvGrid::y_center(std::size_t j) const {
  double acc = 0.0;
  for (std::size_t a = 0; a < j; ++a) acc += dy_[a];
  return acc + 0.5 * dy_[j];
}
double FvGrid::z_center(std::size_t k) const {
  double acc = 0.0;
  for (std::size_t a = 0; a < k; ++a) acc += dz_[a];
  return acc + 0.5 * dz_[k];
}
double FvGrid::lx() const { return std::accumulate(dx_.begin(), dx_.end(), 0.0); }
double FvGrid::ly() const { return std::accumulate(dy_.begin(), dy_.end(), 0.0); }
double FvGrid::lz() const { return std::accumulate(dz_.begin(), dz_.end(), 0.0); }

// --- BoundaryCondition factories ---------------------------------------------

BoundaryCondition BoundaryCondition::fixed(double t_k) {
  BoundaryCondition bc;
  bc.kind = BoundaryKind::FixedTemperature;
  bc.temperature = t_k;
  return bc;
}
BoundaryCondition BoundaryCondition::convection(double h, double t_k) {
  if (h <= 0.0) throw std::invalid_argument("BoundaryCondition::convection: h must be > 0");
  BoundaryCondition bc;
  bc.kind = BoundaryKind::Convection;
  bc.h = h;
  bc.temperature = t_k;
  return bc;
}
BoundaryCondition BoundaryCondition::convection_radiation(double h, double t_k,
                                                          double emissivity) {
  BoundaryCondition bc;
  bc.kind = BoundaryKind::ConvectionRadiation;
  bc.h = h;
  bc.temperature = t_k;
  bc.emissivity = emissivity;
  return bc;
}
BoundaryCondition BoundaryCondition::natural(SurfaceOrientation o, double length, double t_k,
                                             double pressure) {
  BoundaryCondition bc;
  bc.kind = BoundaryKind::NaturalConvection;
  bc.orientation = o;
  bc.characteristic_length = length;
  bc.temperature = t_k;
  bc.pressure = pressure;
  return bc;
}
BoundaryCondition BoundaryCondition::heat_flux(double flux) {
  BoundaryCondition bc;
  bc.kind = BoundaryKind::HeatFlux;
  bc.flux = flux;
  return bc;
}

// --- FvModel ------------------------------------------------------------------

FvModel::FvModel(FvGrid grid)
    : grid_(std::move(grid)),
      kx_(grid_.cell_count(), 1.0),
      ky_(grid_.cell_count(), 1.0),
      kz_(grid_.cell_count(), 1.0),
      rho_cp_(grid_.cell_count(), 1e6),
      source_(grid_.cell_count(), 0.0) {
  patch_bc_[0].resize(grid_.ny() * grid_.nz());
  patch_bc_[1].resize(grid_.ny() * grid_.nz());
  patch_bc_[2].resize(grid_.nx() * grid_.nz());
  patch_bc_[3].resize(grid_.nx() * grid_.nz());
  patch_bc_[4].resize(grid_.nx() * grid_.ny());
  patch_bc_[5].resize(grid_.nx() * grid_.ny());
}

CellRange FvModel::all_cells() const {
  return {0, grid_.nx(), 0, grid_.ny(), 0, grid_.nz()};
}

void FvModel::check_range(const CellRange& r) const {
  if (r.i1 > grid_.nx() || r.j1 > grid_.ny() || r.k1 > grid_.nz() || r.i0 >= r.i1 ||
      r.j0 >= r.j1 || r.k0 >= r.k1)
    throw std::out_of_range("FvModel: invalid cell range");
}

void FvModel::set_material(const materials::SolidMaterial& m) { set_material(all_cells(), m); }

void FvModel::set_material(const CellRange& r, const materials::SolidMaterial& m) {
  check_range(r);
  for (std::size_t k = r.k0; k < r.k1; ++k)
    for (std::size_t j = r.j0; j < r.j1; ++j)
      for (std::size_t i = r.i0; i < r.i1; ++i) {
        const std::size_t c = grid_.index(i, j, k);
        kx_[c] = m.conductivity;
        ky_[c] = m.conductivity;
        kz_[c] = m.conductivity_through;  // convention: z is "through" for boards
        rho_cp_[c] = m.density * m.specific_heat;
      }
}

void FvModel::set_conductivity(const CellRange& r, double kx, double ky, double kz) {
  check_range(r);
  if (kx <= 0.0 || ky <= 0.0 || kz <= 0.0)
    throw std::invalid_argument("set_conductivity: conductivities must be positive");
  for (std::size_t k = r.k0; k < r.k1; ++k)
    for (std::size_t j = r.j0; j < r.j1; ++j)
      for (std::size_t i = r.i0; i < r.i1; ++i) {
        const std::size_t c = grid_.index(i, j, k);
        kx_[c] = kx;
        ky_[c] = ky;
        kz_[c] = kz;
      }
}

void FvModel::add_interface_z(std::size_t k_plane, double specific_resistance) {
  if (k_plane + 1 >= grid_.nz())
    throw std::out_of_range("add_interface_z: plane outside the grid");
  if (specific_resistance <= 0.0)
    throw std::invalid_argument("add_interface_z: resistance must be > 0");
  interfaces_z_.emplace_back(k_plane, specific_resistance);
}

void FvModel::add_power(const CellRange& r, double watts) {
  check_range(r);
  double vol = 0.0;
  for (std::size_t k = r.k0; k < r.k1; ++k)
    for (std::size_t j = r.j0; j < r.j1; ++j)
      for (std::size_t i = r.i0; i < r.i1; ++i) vol += grid_.cell_volume(i, j, k);
  for (std::size_t k = r.k0; k < r.k1; ++k)
    for (std::size_t j = r.j0; j < r.j1; ++j)
      for (std::size_t i = r.i0; i < r.i1; ++i)
        source_[grid_.index(i, j, k)] += watts * grid_.cell_volume(i, j, k) / vol;
}

void FvModel::add_power_density(const std::function<double(double, double, double)>& qv) {
  for (std::size_t k = 0; k < grid_.nz(); ++k)
    for (std::size_t j = 0; j < grid_.ny(); ++j)
      for (std::size_t i = 0; i < grid_.nx(); ++i)
        source_[grid_.index(i, j, k)] +=
            qv(grid_.x_center(i), grid_.y_center(j), grid_.z_center(k)) *
            grid_.cell_volume(i, j, k);
}

void FvModel::clear_power() { std::fill(source_.begin(), source_.end(), 0.0); }

void FvModel::set_boundary(Face f, const BoundaryCondition& bc) {
  default_bc_[static_cast<std::size_t>(f)] = bc;
}

void FvModel::set_boundary_patch(Face f, const CellRange& r, const BoundaryCondition& bc) {
  auto& patches = patch_bc_[static_cast<std::size_t>(f)];
  switch (f) {
    case Face::XMin:
    case Face::XMax:
      if (r.j1 > grid_.ny() || r.k1 > grid_.nz() || r.j0 >= r.j1 || r.k0 >= r.k1)
        throw std::out_of_range("set_boundary_patch: invalid patch");
      for (std::size_t k = r.k0; k < r.k1; ++k)
        for (std::size_t j = r.j0; j < r.j1; ++j) patches[j + grid_.ny() * k] = bc;
      break;
    case Face::YMin:
    case Face::YMax:
      if (r.i1 > grid_.nx() || r.k1 > grid_.nz() || r.i0 >= r.i1 || r.k0 >= r.k1)
        throw std::out_of_range("set_boundary_patch: invalid patch");
      for (std::size_t k = r.k0; k < r.k1; ++k)
        for (std::size_t i = r.i0; i < r.i1; ++i) patches[i + grid_.nx() * k] = bc;
      break;
    case Face::ZMin:
    case Face::ZMax:
      if (r.i1 > grid_.nx() || r.j1 > grid_.ny() || r.i0 >= r.i1 || r.j0 >= r.j1)
        throw std::out_of_range("set_boundary_patch: invalid patch");
      for (std::size_t j = r.j0; j < r.j1; ++j)
        for (std::size_t i = r.i0; i < r.i1; ++i) patches[i + grid_.nx() * j] = bc;
      break;
  }
}

void FvModel::clear_boundary_overrides() {
  for (auto& patches : patch_bc_)
    std::fill(patches.begin(), patches.end(), std::nullopt);
}

const BoundaryCondition& FvModel::boundary_for(Face f, std::size_t a, std::size_t b) const {
  const auto& patches = patch_bc_[static_cast<std::size_t>(f)];
  std::size_t idx = 0;
  switch (f) {
    case Face::XMin:
    case Face::XMax:
      idx = a + grid_.ny() * b;  // a = j, b = k
      break;
    case Face::YMin:
    case Face::YMax:
      idx = a + grid_.nx() * b;  // a = i, b = k
      break;
    case Face::ZMin:
    case Face::ZMax:
      idx = a + grid_.nx() * b;  // a = i, b = j
      break;
  }
  if (patches[idx].has_value()) return *patches[idx];
  return default_bc_[static_cast<std::size_t>(f)];
}

double FvModel::face_conductance_x(std::size_t i0, std::size_t i1, std::size_t j, std::size_t k,
                                   FaceConductanceScheme scheme) const {
  const double area = grid_.dy(j) * grid_.dz(k);
  const double ka = kx_[grid_.index(i0, j, k)];
  const double kb = kx_[grid_.index(i1, j, k)];
  const double da = grid_.dx(i0), db = grid_.dx(i1);
  if (scheme == FaceConductanceScheme::HarmonicMean)
    return area / (0.5 * da / ka + 0.5 * db / kb);
  return 0.5 * (ka + kb) * area / (0.5 * (da + db));
}

double FvModel::face_conductance_y(std::size_t j0, std::size_t j1, std::size_t i, std::size_t k,
                                   FaceConductanceScheme scheme) const {
  const double area = grid_.dx(i) * grid_.dz(k);
  const double ka = ky_[grid_.index(i, j0, k)];
  const double kb = ky_[grid_.index(i, j1, k)];
  const double da = grid_.dy(j0), db = grid_.dy(j1);
  if (scheme == FaceConductanceScheme::HarmonicMean)
    return area / (0.5 * da / ka + 0.5 * db / kb);
  return 0.5 * (ka + kb) * area / (0.5 * (da + db));
}

double FvModel::face_conductance_z(std::size_t k0, std::size_t k1, std::size_t i, std::size_t j,
                                   FaceConductanceScheme scheme) const {
  const double area = grid_.dx(i) * grid_.dy(j);
  const double ka = kz_[grid_.index(i, j, k0)];
  const double kb = kz_[grid_.index(i, j, k1)];
  const double da = grid_.dz(k0), db = grid_.dz(k1);
  // Contact (TIM / bond-line) resistance registered on this plane.
  double r_contact = 0.0;
  for (const auto& [plane, r_spec] : interfaces_z_)
    if (plane == std::min(k0, k1)) r_contact += r_spec / area;
  if (scheme == FaceConductanceScheme::HarmonicMean)
    return 1.0 / (0.5 * da / (ka * area) + 0.5 * db / (kb * area) + r_contact);
  const double g_bulk = 0.5 * (ka + kb) * area / (0.5 * (da + db));
  return 1.0 / (1.0 / g_bulk + r_contact);
}

double FvModel::boundary_conductance(const BoundaryCondition& bc, double area,
                                     double half_thickness, double k_cell, double t_cell) const {
  const double g_cond = k_cell * area / half_thickness;
  switch (bc.kind) {
    case BoundaryKind::Adiabatic:
    case BoundaryKind::HeatFlux:
      return 0.0;
    case BoundaryKind::FixedTemperature:
      return g_cond;
    case BoundaryKind::Convection: {
      const double g_film = bc.h * area;
      return 1.0 / (1.0 / g_cond + 1.0 / g_film);
    }
    case BoundaryKind::ConvectionRadiation: {
      const double h_eff = bc.h + h_radiation(t_cell, bc.temperature, bc.emissivity);
      if (h_eff <= 0.0) return 0.0;
      const double g_film = h_eff * area;
      return 1.0 / (1.0 / g_cond + 1.0 / g_film);
    }
    case BoundaryKind::NaturalConvection: {
      const double h = h_natural_plate(bc.orientation, t_cell, bc.temperature,
                                       bc.characteristic_length, bc.pressure);
      if (h <= 0.0) return 0.0;
      const double g_film = h * area;
      return 1.0 / (1.0 / g_cond + 1.0 / g_film);
    }
  }
  throw std::logic_error("boundary_conductance: unknown kind");
}

namespace {
struct BoundaryFaceView {
  Face face;
  std::size_t i, j, k;  // cell indices
  std::size_t a, b;     // in-plane indices for boundary_for
  double area;
  double half;    // half cell thickness normal to the face
  double k_cell;  // conductivity normal to the face
};
}  // namespace

// Visit every boundary cell-face of the domain.
template <typename F>
static void for_each_boundary_face(const FvGrid& g, const Vector& kx, const Vector& ky,
                                   const Vector& kz, F&& fn) {
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j) {
      fn(BoundaryFaceView{Face::XMin, 0, j, k, j, k, g.dy(j) * g.dz(k), 0.5 * g.dx(0),
                          kx[g.index(0, j, k)]});
      fn(BoundaryFaceView{Face::XMax, nx - 1, j, k, j, k, g.dy(j) * g.dz(k),
                          0.5 * g.dx(nx - 1), kx[g.index(nx - 1, j, k)]});
    }
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t i = 0; i < nx; ++i) {
      fn(BoundaryFaceView{Face::YMin, i, 0, k, i, k, g.dx(i) * g.dz(k), 0.5 * g.dy(0),
                          ky[g.index(i, 0, k)]});
      fn(BoundaryFaceView{Face::YMax, i, ny - 1, k, i, k, g.dx(i) * g.dz(k),
                          0.5 * g.dy(ny - 1), ky[g.index(i, ny - 1, k)]});
    }
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      fn(BoundaryFaceView{Face::ZMin, i, j, 0, i, j, g.dx(i) * g.dy(j), 0.5 * g.dz(0),
                          kz[g.index(i, j, 0)]});
      fn(BoundaryFaceView{Face::ZMax, i, j, nz - 1, i, j, g.dx(i) * g.dy(j),
                          0.5 * g.dz(nz - 1), kz[g.index(i, j, nz - 1)]});
    }
}

std::size_t FvAssembly::cost_bytes() const {
  return sizeof(FvAssembly) +
         matrix.values().size() * (sizeof(double) + sizeof(std::size_t)) +
         matrix.row_ptr().size() * sizeof(std::size_t) +
         base_values.size() * sizeof(double) + diag_index.size() * sizeof(std::size_t) +
         capacity.size() * sizeof(double);
}

std::uint64_t FvModel::structural_hash(const FvOptions& opts, double inv_dt) const {
  numeric::StructuralHasher h;
  h.add("thermal.fv_assembly");
  // Grid geometry as exact cell-size bits.
  h.add(static_cast<std::uint64_t>(grid_.nx()))
      .add(static_cast<std::uint64_t>(grid_.ny()))
      .add(static_cast<std::uint64_t>(grid_.nz()));
  for (std::size_t i = 0; i < grid_.nx(); ++i) h.add(grid_.dx(i));
  for (std::size_t j = 0; j < grid_.ny(); ++j) h.add(grid_.dy(j));
  for (std::size_t k = 0; k < grid_.nz(); ++k) h.add(grid_.dz(k));
  // Every per-cell coefficient the assembly bakes in. Sources and boundary
  // conditions are deliberately absent: they are per-solve inputs.
  h.add(kx_).add(ky_).add(kz_).add(rho_cp_);
  h.add(static_cast<std::uint64_t>(interfaces_z_.size()));
  for (const auto& [plane, r_spec] : interfaces_z_)
    h.add(static_cast<std::uint64_t>(plane)).add(r_spec);
  h.add(static_cast<std::uint64_t>(opts.scheme));
  h.add(inv_dt);
  return h.value();
}

std::shared_ptr<const FvAssembly> FvModel::build_assembly(const FvOptions& opts,
                                                          double inv_dt) const {
  static thread_local obs::CounterHandle assemblies{"fv.structure_assemblies"};
  assemblies.add();
  obs::ScopedTimer span("fv.assemble_structure");
  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  const std::size_t n = grid_.cell_count();
  const std::size_t sxy = nx * ny;

  // Face conductances: temperature-independent, computed exactly once.
  // gx[(i,j,k)], i in [0,nx-1): conductance of the face between cells
  // (i,j,k) and (i+1,j,k); gy/gz analogous.
  std::vector<double> gx(nx > 1 ? (nx - 1) * ny * nz : 0, 0.0);
  std::vector<double> gy(ny > 1 ? nx * (ny - 1) * nz : 0, 0.0);
  std::vector<double> gz(nz > 1 ? sxy * (nz - 1) : 0, 0.0);
  // The range is nz but each index fills a full plane of faces: the grain
  // estimate must count cells, or the dispatcher would serialize real work.
  numeric::parallel_for(
      0, nz,
      [&](std::size_t klo, std::size_t khi) {
        for (std::size_t k = klo; k < khi; ++k)
          for (std::size_t j = 0; j < ny; ++j) {
            for (std::size_t i = 0; i + 1 < nx; ++i)
              gx[i + (nx - 1) * (j + ny * k)] = face_conductance_x(i, i + 1, j, k, opts.scheme);
            if (j + 1 < ny)
              for (std::size_t i = 0; i < nx; ++i)
                gy[i + nx * (j + (ny - 1) * k)] = face_conductance_y(j, j + 1, i, k, opts.scheme);
            if (k + 1 < nz)
              for (std::size_t i = 0; i < nx; ++i)
                gz[i + nx * (j + ny * k)] = face_conductance_z(k, k + 1, i, j, opts.scheme);
          }
      },
      numeric::grain::Work::elements(n, numeric::grain::Cost::kCell));

  auto cache = std::make_shared<FvAssembly>();
  cache->inv_dt = inv_dt;
  cache->structural_hash = structural_hash(opts, inv_dt);
  if (inv_dt > 0.0) {
    cache->capacity.assign(n, 0.0);
    for (std::size_t k = 0; k < nz; ++k)
      for (std::size_t j = 0; j < ny; ++j)
        for (std::size_t i = 0; i < nx; ++i) {
          const std::size_t c = grid_.index(i, j, k);
          cache->capacity[c] = rho_cp_[c] * grid_.cell_volume(i, j, k) * inv_dt;
        }
  }

  // Symbolic structure: 7-point stencil, columns emitted in ascending order
  // (offsets -sxy < -nx < -1 < 0 < +1 < +nx < +sxy for existing neighbors),
  // which satisfies the CsrMatrix sorted-column invariant by construction.
  std::vector<std::size_t> row_ptr(n + 1, 0);
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t stencil = 1 + (i > 0) + (i + 1 < nx) + (j > 0) + (j + 1 < ny) +
                                    (k > 0) + (k + 1 < nz);
        row_ptr[grid_.index(i, j, k) + 1] = stencil;
      }
  for (std::size_t c = 0; c < n; ++c) row_ptr[c + 1] += row_ptr[c];

  const std::size_t nnz = row_ptr[n];
  std::vector<std::size_t> col_idx(nnz);
  cache->base_values.assign(nnz, 0.0);
  cache->diag_index.assign(n, 0);
  numeric::parallel_for(
      0, nz,
      [&](std::size_t klo, std::size_t khi) {
    for (std::size_t k = klo; k < khi; ++k)
      for (std::size_t j = 0; j < ny; ++j)
        for (std::size_t i = 0; i < nx; ++i) {
          const std::size_t c = grid_.index(i, j, k);
          std::size_t w = row_ptr[c];
          double diag = cache->capacity.empty() ? 0.0 : cache->capacity[c];
          const auto off_diag = [&](std::size_t col, double g) {
            col_idx[w] = col;
            cache->base_values[w] = -g;
            ++w;
            diag += g;
          };
          if (k > 0) off_diag(c - sxy, gz[i + nx * (j + ny * (k - 1))]);
          if (j > 0) off_diag(c - nx, gy[i + nx * (j - 1 + (ny - 1) * k)]);
          if (i > 0) off_diag(c - 1, gx[i - 1 + (nx - 1) * (j + ny * k)]);
          const std::size_t dpos = w;
          col_idx[w] = c;
          ++w;
          if (i + 1 < nx) off_diag(c + 1, gx[i + (nx - 1) * (j + ny * k)]);
          if (j + 1 < ny) off_diag(c + nx, gy[i + nx * (j + (ny - 1) * k)]);
          if (k + 1 < nz) off_diag(c + sxy, gz[i + nx * (j + ny * k)]);
          cache->base_values[dpos] = diag;
          cache->diag_index[c] = dpos;
        }
      },
      numeric::grain::Work::elements(n, numeric::grain::Cost::kCell));

  cache->matrix = numeric::CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                                     std::vector<double>(cache->base_values));
  return cache;
}

numeric::Vector FvModel::build_base_rhs() const {
  // Static right-hand side: volumetric sources + prescribed boundary fluxes.
  Vector base_rhs = source_;
  for_each_boundary_face(grid_, kx_, ky_, kz_, [&](const BoundaryFaceView& f) {
    const BoundaryCondition& bc = boundary_for(f.face, f.a, f.b);
    if (bc.kind == BoundaryKind::HeatFlux)
      base_rhs[grid_.index(f.i, f.j, f.k)] += bc.flux * f.area;
  });
  return base_rhs;
}

FvModel::Workspace FvModel::make_workspace(std::shared_ptr<const FvAssembly> assembly) const {
  Workspace ws;
  ws.matrix = assembly->matrix;  // private working copy; the shared artifact stays immutable
  ws.base_rhs = build_base_rhs();
  ws.assembly = std::move(assembly);
  return ws;
}

void FvModel::update_boundary_terms(Workspace& ws, const Vector& temps,
                                    const Vector* prev, Vector& rhs) const {
  static thread_local obs::CounterHandle updates{"fv.boundary_updates"};
  updates.add();
  obs::ScopedTimer span("fv.update_boundary");
  const FvAssembly& a = *ws.assembly;
  std::vector<double>& values = ws.matrix.values();
  numeric::parallel_for(0, values.size(), [&](std::size_t lo, std::size_t hi) {
    std::copy(a.base_values.begin() + static_cast<std::ptrdiff_t>(lo),
              a.base_values.begin() + static_cast<std::ptrdiff_t>(hi),
              values.begin() + static_cast<std::ptrdiff_t>(lo));
  });
  rhs = ws.base_rhs;
  if (!a.capacity.empty() && prev) {
    numeric::parallel_for(0, rhs.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t c = lo; c < hi; ++c) rhs[c] += a.capacity[c] * (*prev)[c];
    });
  }
  // Boundary films are the only temperature-dependent coefficients; the
  // surface is O(n^(2/3)) so this per-pass rewrite is cheap.
  for_each_boundary_face(grid_, kx_, ky_, kz_, [&](const BoundaryFaceView& f) {
    const BoundaryCondition& bc = boundary_for(f.face, f.a, f.b);
    if (bc.kind == BoundaryKind::HeatFlux) return;  // already in base_rhs
    const std::size_t c = grid_.index(f.i, f.j, f.k);
    const double g = boundary_conductance(bc, f.area, f.half, f.k_cell, temps[c]);
    if (g <= 0.0) return;
    values[a.diag_index[c]] += g;
    rhs[c] += g * bc.temperature;
  });
}

void FvModel::update_driven_terms(Workspace& ws, const Vector& temps, const Vector& prev,
                                  const Vector& capacity, double inv_dt, double t,
                                  const FvDrive* drive, Vector& rhs) const {
  static thread_local obs::CounterHandle updates{"fv.boundary_updates"};
  updates.add();
  obs::ScopedTimer span("fv.update_boundary");
  const FvAssembly& a = *ws.assembly;
  std::vector<double>& values = ws.matrix.values();
  numeric::parallel_for(0, values.size(), [&](std::size_t lo, std::size_t hi) {
    std::copy(a.base_values.begin() + static_cast<std::ptrdiff_t>(lo),
              a.base_values.begin() + static_cast<std::ptrdiff_t>(hi),
              values.begin() + static_cast<std::ptrdiff_t>(lo));
  });
  // The workspace is steady (no baked capacity): the implicit-Euler terms
  // join per step, so the same shared assembly serves every step size.
  const double ps = (drive && drive->power_scale) ? drive->power_scale(t) : 1.0;
  numeric::parallel_for(0, rhs.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      values[a.diag_index[c]] += capacity[c] * inv_dt;
      rhs[c] = ps * source_[c] + capacity[c] * inv_dt * prev[c];
    }
  });
  for_each_boundary_face(grid_, kx_, ky_, kz_, [&](const BoundaryFaceView& f) {
    const BoundaryCondition& stored = boundary_for(f.face, f.a, f.b);
    const BoundaryCondition bc =
        (drive && drive->boundary) ? drive->boundary(t, f.face, stored) : stored;
    const std::size_t c = grid_.index(f.i, f.j, f.k);
    if (bc.kind == BoundaryKind::HeatFlux) {
      rhs[c] += bc.flux * f.area;
      return;
    }
    const double g = boundary_conductance(bc, f.area, f.half, f.k_cell, temps[c]);
    if (g <= 0.0) return;
    values[a.diag_index[c]] += g;
    rhs[c] += g * bc.temperature;
  });
}

// --- FvTransientStepper -----------------------------------------------------

FvTransientStepper::FvTransientStepper(const FvModel& model, const FvOptions& opts,
                                       std::shared_ptr<const FvAssembly> assembly)
    : model_(&model), opts_(opts) {
  if (!assembly) {
    assembly = model.build_assembly(opts, 0.0);
    structure_assemblies_ = 1;
  } else if (assembly->inv_dt != 0.0 ||
             assembly->structural_hash != model.structural_hash(opts, 0.0)) {
    throw std::invalid_argument(
        "FvTransientStepper: shared assembly does not match this model "
        "(must be steady and structurally identical)");
  }
  ws_ = model.make_workspace(std::move(assembly));
  capacity_ = model.cell_capacities();
  rhs_.assign(model.grid().cell_count(), 0.0);
}

std::size_t FvTransientStepper::step(Vector& temps, double t_next, double dt,
                                     const FvDrive* drive) {
  core::check_step_size("FvTransientStepper::step", dt);
  core::check_state_size("FvTransientStepper::step", temps.size(), capacity_.size());
  static thread_local obs::CounterHandle transient_steps{"fv.transient_steps"};
  static thread_local obs::CounterHandle warmstart_hits{"fv.warmstart_hits"};
  model_->update_driven_terms(ws_, temps, temps, capacity_, 1.0 / dt, t_next, drive, rhs_);
  const auto lin = numeric::conjugate_gradient(ws_.matrix, rhs_, opts_.linear, &temps);
  if (!lin.converged)
    throw std::runtime_error("FvTransientStepper::step: linear solver failed");
  transient_steps.add();
  if (lin.iterations == 0) warmstart_hits.add();
  temps = lin.x;
  return lin.iterations;
}

double FvTransientStepper::error_norm(const Vector& a, const Vector& b) const {
  // Serial max-norm: the controller metric must be bitwise independent of
  // the thread count (same contract as the march itself).
  double err = 0.0;
  for (std::size_t c = 0; c < a.size(); ++c) err = std::max(err, std::abs(a[c] - b[c]));
  return err;
}

LinearSteadySystem FvModel::linearize_steady(const FvOptions& opts) const {
  bool nonlinear = false;
  for_each_boundary_face(grid_, kx_, ky_, kz_, [&](const BoundaryFaceView& f) {
    const BoundaryCondition& bc = boundary_for(f.face, f.a, f.b);
    if (bc.kind == BoundaryKind::ConvectionRadiation ||
        bc.kind == BoundaryKind::NaturalConvection)
      nonlinear = true;
  });
  if (nonlinear)
    throw std::invalid_argument(
        "FvModel::linearize_steady: model has temperature-dependent boundary "
        "conditions (ConvectionRadiation / NaturalConvection); only linear "
        "boundaries admit a single constant operator");

  Workspace ws = make_workspace(build_assembly(opts, 0.0));
  LinearSteadySystem sys;
  // All boundary conductances are temperature-independent here, so the
  // iterate passed to the boundary rewrite is arbitrary.
  const Vector temps(grid_.cell_count(), 0.0);
  update_boundary_terms(ws, temps, nullptr, sys.rhs);
  sys.matrix = std::move(ws.matrix);
  return sys;
}

numeric::Vector FvModel::cell_capacities() const {
  const std::size_t nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  Vector cap(grid_.cell_count(), 0.0);
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t c = grid_.index(i, j, k);
        cap[c] = rho_cp_[c] * grid_.cell_volume(i, j, k);
      }
  return cap;
}

double FvModel::energy_residual(const Vector& temps, const FvOptions& opts) const {
  double sources = std::accumulate(source_.begin(), source_.end(), 0.0);
  double outflow = 0.0;
  for_each_boundary_face(grid_, kx_, ky_, kz_, [&](const BoundaryFaceView& f) {
    const BoundaryCondition& bc = boundary_for(f.face, f.a, f.b);
    const std::size_t c = grid_.index(f.i, f.j, f.k);
    if (bc.kind == BoundaryKind::HeatFlux) {
      outflow -= bc.flux * f.area;
      return;
    }
    const double g = boundary_conductance(bc, f.area, f.half, f.k_cell, temps[c]);
    outflow += g * (temps[c] - bc.temperature);
  });
  (void)opts;
  return std::fabs(sources - outflow);
}

FvSolution FvModel::solve_steady_impl(const FvOptions& opts,
                                      std::shared_ptr<const FvAssembly> assembly) const {
  const std::size_t n = grid_.cell_count();
  // Check that the problem is bounded: at least one face must sink heat.
  bool has_sink = false;
  for_each_boundary_face(grid_, kx_, ky_, kz_, [&](const BoundaryFaceView& f) {
    const BoundaryCondition& bc = boundary_for(f.face, f.a, f.b);
    if (bc.kind != BoundaryKind::Adiabatic && bc.kind != BoundaryKind::HeatFlux)
      has_sink = true;
  });
  if (!has_sink)
    throw std::logic_error("FvModel::solve_steady: no temperature-referencing boundary");

  // Does any boundary depend on the iterate temperature?
  bool nonlinear = false;
  for_each_boundary_face(grid_, kx_, ky_, kz_, [&](const BoundaryFaceView& f) {
    const BoundaryCondition& bc = boundary_for(f.face, f.a, f.b);
    if (bc.kind == BoundaryKind::ConvectionRadiation ||
        bc.kind == BoundaryKind::NaturalConvection)
      nonlinear = true;
  });

  // Initial guess: first sink temperature + a few kelvin.
  double t_guess = 300.0;
  for_each_boundary_face(grid_, kx_, ky_, kz_, [&](const BoundaryFaceView& f) {
    const BoundaryCondition& bc = boundary_for(f.face, f.a, f.b);
    if (bc.kind != BoundaryKind::Adiabatic && bc.kind != BoundaryKind::HeatFlux)
      t_guess = bc.temperature + 10.0;
  });

  Vector temps(n, t_guess);
  FvSolution sol;
  static thread_local obs::CounterHandle steady_solves{"fv.steady_solves"};
  static thread_local obs::CounterHandle picard_passes{"fv.picard_passes"};
  static thread_local obs::CounterHandle cg_iterations{"fv.cg_iterations"};
  static thread_local obs::CounterHandle warmstart_hits{"fv.warmstart_hits"};
  steady_solves.add();
  obs::ScopedTimer span("fv.solve_steady");
  if (obs::enabled()) obs::current().gauge("fv.cells").set(static_cast<double>(n));
  // Fast path: symbolic structure + static coefficients assembled once;
  // Picard passes rewrite only boundary terms and warm-start CG from the
  // previous pass's temperature field. A caller-supplied shared assembly
  // skips the structural pass entirely (cache-hit path) — the workspace
  // copies the static values so the shared artifact stays immutable.
  if (!assembly) {
    assembly = build_assembly(opts, 0.0);
    sol.structure_assemblies = 1;
  } else {
    if (assembly->inv_dt != 0.0 ||
        assembly->structural_hash != structural_hash(opts, 0.0))
      throw std::invalid_argument(
          "FvModel::solve_steady: shared assembly does not match this model "
          "(structural hash or inv_dt differs)");
    sol.structure_assemblies = 0;
  }
  Workspace ws = make_workspace(std::move(assembly));
  Vector rhs(n);
  const std::size_t passes = nonlinear ? opts.max_picard_iterations : 1;
  for (std::size_t it = 0; it < passes; ++it) {
    update_boundary_terms(ws, temps, nullptr, rhs);
    const auto lin = numeric::conjugate_gradient(ws.matrix, rhs, opts.linear, &temps);
    if (!lin.converged)
      throw std::runtime_error("FvModel::solve_steady: linear solver failed to converge");
    picard_passes.add();
    cg_iterations.add(lin.iterations);
    if (lin.iterations == 0) warmstart_hits.add();
    if (obs::enabled()) {
      // Per-pass convergence trace: how many CG iterations each Picard pass
      // cost and where its linear residual landed.
      obs::current()
          .gauge(obs::indexed_key("fv.picard", it + 1, "cg_iterations"))
          .set(static_cast<double>(lin.iterations));
      obs::current()
          .gauge(obs::indexed_key("fv.picard", it + 1, "residual"))
          .set(lin.residual);
    }
    sol.linear_iterations += lin.iterations;
    double delta = 0.0;
    for (std::size_t c = 0; c < n; ++c) delta = std::max(delta, std::fabs(lin.x[c] - temps[c]));
    temps = lin.x;
    sol.picard_iterations = it + 1;
    if (!nonlinear || delta < opts.picard_tolerance) {
      sol.converged = true;
      break;
    }
  }
  sol.temperatures = temps;
  sol.energy_residual = energy_residual(temps, opts);
  sol.max_temperature = numeric::max_element(temps);
  sol.min_temperature = numeric::min_element(temps);
  return sol;
}

FvSolution FvModel::solve_steady(const FvOptions& opts) const {
  return solve_steady_impl(opts, nullptr);
}

FvSolution FvModel::solve_steady(const std::shared_ptr<const FvAssembly>& assembly,
                                 const FvOptions& opts) const {
  if (!assembly)
    throw std::invalid_argument("FvModel::solve_steady: null shared assembly");
  return solve_steady_impl(opts, assembly);
}

namespace {

// Context-pinned solves inherit the context's Chebyshev degree unless the
// caller set one explicitly on the linear options.
FvOptions with_context_tuning(const ExecutionContext& ctx, FvOptions opts) {
  if (opts.linear.chebyshev_degree == 0)
    opts.linear.chebyshev_degree = ctx.config().cg_chebyshev_degree;
  return opts;
}

}  // namespace

FvSolution FvModel::solve_steady(ExecutionContext& ctx, const FvOptions& opts) const {
  const ExecutionContext::Use use(ctx);
  return solve_steady(with_context_tuning(ctx, opts));
}

FvSolution FvModel::solve_steady(ExecutionContext& ctx,
                                 const std::shared_ptr<const FvAssembly>& assembly,
                                 const FvOptions& opts) const {
  const ExecutionContext::Use use(ctx);
  return solve_steady(assembly, with_context_tuning(ctx, opts));
}

FvTransientSolution FvModel::solve_transient(double t_end, double dt, double t_initial,
                                             const FvOptions& opts) const {
  return solve_transient(t_end, dt, Vector(grid_.cell_count(), t_initial), opts);
}

FvTransientSolution FvModel::solve_transient(ExecutionContext& ctx, double t_end, double dt,
                                             double t_initial, const FvOptions& opts) const {
  const ExecutionContext::Use use(ctx);
  return solve_transient(t_end, dt, t_initial, with_context_tuning(ctx, opts));
}

FvTransientSolution FvModel::solve_transient(ExecutionContext& ctx, double t_end, double dt,
                                             const Vector& initial_temperatures,
                                             const FvOptions& opts) const {
  const ExecutionContext::Use use(ctx);
  return solve_transient(t_end, dt, initial_temperatures, with_context_tuning(ctx, opts));
}

FvTransientSolution FvModel::solve_transient(double t_end, double dt,
                                             const Vector& initial_temperatures,
                                             const FvOptions& opts) const {
  dt = core::check_march_window("FvModel::solve_transient", t_end, dt);
  const std::size_t n = grid_.cell_count();
  core::check_state_size("FvModel::solve_transient", initial_temperatures.size(), n);
  Vector temps = initial_temperatures;
  FvTransientSolution out;
  out.times.push_back(0.0);
  out.temperatures.push_back(temps);
  // Structure + capacity assembled once for the whole march (the undriven
  // fixed-dt march bakes capacity/dt into the assembly); each implicit
  // Euler step rewrites boundary terms and warm-starts CG from the previous
  // step's field instead of re-converging from scratch.
  static thread_local obs::CounterHandle transient_steps{"fv.transient_steps"};
  static thread_local obs::CounterHandle warmstart_hits{"fv.warmstart_hits"};
  obs::ScopedTimer span("fv.solve_transient");
  // Local stepper over the baked-capacity workspace: a member-function-local
  // class shares the enclosing function's access to FvModel's private
  // workspace machinery, so the undriven march rides the shared engine loop
  // without widening the model's API.
  struct BakedStepper {
    const FvModel* model;
    const FvOptions* opts;
    Workspace ws;
    Vector rhs;
    obs::CounterHandle* steps;
    obs::CounterHandle* warm;
    std::size_t state_size() const { return rhs.size(); }
    std::size_t step(Vector& temps, double /*t_next*/, double /*dt*/) {
      model->update_boundary_terms(ws, temps, &temps, rhs);
      const auto lin = numeric::conjugate_gradient(ws.matrix, rhs, opts->linear, &temps);
      if (!lin.converged)
        throw std::runtime_error("FvModel::solve_transient: linear solver failed");
      steps->add();
      if (lin.iterations == 0) warm->add();
      temps = lin.x;
      return lin.iterations;
    }
    double error_norm(const Vector& a, const Vector& b) const {
      double err = 0.0;
      for (std::size_t c = 0; c < a.size(); ++c) err = std::max(err, std::abs(a[c] - b[c]));
      return err;
    }
  };
  BakedStepper stepper{this,      &opts, make_workspace(build_assembly(opts, 1.0 / dt)),
                       Vector(n), &transient_steps, &warmstart_hits};
  out.structure_assemblies = 1;
  out.linear_iterations =
      core::march_fixed(stepper, temps, t_end, dt, [&](double t_next, const Vector& state) {
        out.times.push_back(t_next);
        out.temperatures.push_back(state);
      });
  return out;
}

FvTransientSolution FvModel::solve_transient(double t_end, double dt,
                                             const Vector& initial_temperatures,
                                             const FvDrive& drive, const FvOptions& opts,
                                             std::shared_ptr<const FvAssembly> assembly) const {
  dt = core::check_march_window("FvModel::solve_transient", t_end, dt);
  core::check_state_size("FvModel::solve_transient", initial_temperatures.size(),
                         grid_.cell_count());
  FvTransientStepper stepper(*this, opts, std::move(assembly));
  stepper.set_drive(&drive);
  FvTransientSolution out;
  out.structure_assemblies = stepper.structure_assemblies();
  Vector temps = initial_temperatures;
  out.times.push_back(0.0);
  out.temperatures.push_back(temps);
  obs::ScopedTimer span("fv.solve_transient");
  out.linear_iterations =
      core::march_fixed(stepper, temps, t_end, dt, [&](double t_next, const Vector& state) {
        out.times.push_back(t_next);
        out.temperatures.push_back(state);
      });
  return out;
}

FvTransientSolution FvModel::solve_transient(ExecutionContext& ctx, double t_end, double dt,
                                             const Vector& initial_temperatures,
                                             const FvDrive& drive, const FvOptions& opts,
                                             std::shared_ptr<const FvAssembly> assembly) const {
  const ExecutionContext::Use use(ctx);
  return solve_transient(t_end, dt, initial_temperatures, drive, with_context_tuning(ctx, opts),
                         std::move(assembly));
}

double FvModel::region_max(const Vector& temps, const CellRange& r) const {
  check_range(r);
  double best = -1e300;
  for (std::size_t k = r.k0; k < r.k1; ++k)
    for (std::size_t j = r.j0; j < r.j1; ++j)
      for (std::size_t i = r.i0; i < r.i1; ++i)
        best = std::max(best, temps[grid_.index(i, j, k)]);
  return best;
}

double FvModel::region_mean(const Vector& temps, const CellRange& r) const {
  check_range(r);
  double acc = 0.0, vol = 0.0;
  for (std::size_t k = r.k0; k < r.k1; ++k)
    for (std::size_t j = r.j0; j < r.j1; ++j)
      for (std::size_t i = r.i0; i < r.i1; ++i) {
        const double v = grid_.cell_volume(i, j, k);
        acc += temps[grid_.index(i, j, k)] * v;
        vol += v;
      }
  return acc / vol;
}

}  // namespace aeropack::thermal
