// Plate-fin heat sink model: fin-array conductance under natural or forced
// convection, with the Bar-Cohen/Rohsenow optimum-spacing rule for natural
// convection. Used by the cooling-technology trades ("air flow around" and
// free-convection options grow fins when the bare case is not enough).
#pragma once

#include "materials/air.hpp"

namespace aeropack::thermal {

/// Rectangular plate-fin heat sink on a base plate.
struct HeatSink {
  double base_length = 0.15;     ///< flow / fin direction [m]
  double base_width = 0.10;      ///< across the fins [m]
  double base_thickness = 5e-3;  ///< [m]
  double fin_height = 30e-3;     ///< [m]
  double fin_thickness = 1.5e-3; ///< [m]
  double fin_gap = 6e-3;         ///< channel width between fins [m]
  double conductivity = 200.0;   ///< fin/base material [W/m K]
  double emissivity = 0.85;      ///< anodized

  int fin_count() const;
  /// Total exposed fin area (both faces of each fin). [m^2]
  double fin_area() const;
  /// Base area not covered by fins. [m^2]
  double exposed_base_area() const;
  void validate() const;  ///< throws std::invalid_argument
};

/// Conductance of the sink under buoyancy-driven flow through vertical
/// channels (fins vertical, Elenbaas channel correlation). [W/K]
double heatsink_conductance_natural(const HeatSink& hs, double t_base_k, double t_ambient_k,
                                    double pressure_pa = 101325.0);

/// Conductance under a forced approach velocity [m/s] (developing channel
/// flow between fins). [W/K]
double heatsink_conductance_forced(const HeatSink& hs, double velocity, double t_film_k,
                                   double pressure_pa = 101325.0);

/// Thermal resistance base-to-ambient including fin efficiency. [K/W]
double heatsink_resistance(const HeatSink& hs, double t_base_k, double t_ambient_k,
                           double velocity = 0.0, double pressure_pa = 101325.0);

/// Bar-Cohen optimum fin gap for natural convection on a vertical plate of
/// height `length` at the given temperatures. [m]
double optimal_fin_gap_natural(double length, double t_base_k, double t_ambient_k,
                               double pressure_pa = 101325.0);

/// Solve the base temperature for a given dissipation [W] (nonlinear in the
/// natural-convection case; Brent on the energy balance). [K]
double heatsink_base_temperature(const HeatSink& hs, double power_w, double t_ambient_k,
                                 double velocity = 0.0, double pressure_pa = 101325.0);

}  // namespace aeropack::thermal
