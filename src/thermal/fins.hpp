// Extended-surface (fin) conductances. The COSEE seat structure works as a
// natural-convection fin system: the LHP condensers inject heat into long
// rods/tubes whose efficiency depends strongly on the structural material's
// conductivity — the physical reason the carbon-composite seat performs
// below the aluminum one in the paper.
#pragma once

namespace aeropack::thermal {

/// Fin parameter m = sqrt(h P / (k A_c)).
double fin_parameter(double h, double perimeter, double k, double cross_section);

/// Conductance [W/K] of a straight fin with adiabatic tip:
/// G = sqrt(h P k A_c) tanh(m L).
double fin_conductance(double h, double perimeter, double k, double cross_section,
                       double length);

/// Efficiency of the same fin: tanh(mL) / (mL).
double fin_efficiency(double h, double perimeter, double k, double cross_section,
                      double length);

/// Conductance of a cylindrical rod heated at one point with both halves
/// acting as fins (lengths l1, l2), diameter d, conductivity k, film h.
double rod_sink_conductance(double h, double diameter, double k, double l1, double l2);

}  // namespace aeropack::thermal
