#include "thermal/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/transient_engine.hpp"
#include "exec/context.hpp"
#include "numeric/solve_dense.hpp"
#include "obs/registry.hpp"

namespace aeropack::thermal {

using numeric::Matrix;
using numeric::Vector;

NodeId ThermalNetwork::add_node(std::string name, double capacitance) {
  if (capacitance < 0.0) throw std::invalid_argument("add_node: negative capacitance");
  nodes_.push_back({std::move(name), false, 0.0, capacitance, 0.0});
  return nodes_.size() - 1;
}

NodeId ThermalNetwork::add_boundary(std::string name, double temperature) {
  if (temperature <= 0.0)
    throw std::invalid_argument("add_boundary: temperature must be absolute (K) and > 0");
  nodes_.push_back({std::move(name), true, temperature, 0.0, 0.0});
  return nodes_.size() - 1;
}

void ThermalNetwork::check_node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("ThermalNetwork: bad node id");
}

void ThermalNetwork::add_conductor(NodeId a, NodeId b, double conductance) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("add_conductor: self loop");
  if (conductance <= 0.0) throw std::invalid_argument("add_conductor: conductance must be > 0");
  conductors_.push_back({a, b, conductance, nullptr});
}

void ThermalNetwork::add_resistor(NodeId a, NodeId b, double resistance) {
  if (resistance <= 0.0) throw std::invalid_argument("add_resistor: resistance must be > 0");
  add_conductor(a, b, 1.0 / resistance);
}

void ThermalNetwork::add_nonlinear_conductor(NodeId a, NodeId b, ConductanceFn g) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("add_nonlinear_conductor: self loop");
  if (!g) throw std::invalid_argument("add_nonlinear_conductor: empty callback");
  conductors_.push_back({a, b, 0.0, std::move(g)});
}

void ThermalNetwork::add_heat_load(NodeId node, double watts) {
  check_node(node);
  if (nodes_[node].boundary) throw std::invalid_argument("add_heat_load: node is a boundary");
  nodes_[node].load += watts;
}

void ThermalNetwork::set_heat_load(NodeId node, double watts) {
  check_node(node);
  if (nodes_[node].boundary) throw std::invalid_argument("set_heat_load: node is a boundary");
  nodes_[node].load = watts;
}

const std::string& ThermalNetwork::node_name(NodeId id) const {
  check_node(id);
  return nodes_[id].name;
}

bool ThermalNetwork::is_boundary(NodeId id) const {
  check_node(id);
  return nodes_[id].boundary;
}

void ThermalNetwork::set_boundary_temperature(NodeId id, double temperature) {
  check_node(id);
  if (!nodes_[id].boundary)
    throw std::invalid_argument("set_boundary_temperature: not a boundary node");
  if (temperature <= 0.0) throw std::invalid_argument("set_boundary_temperature: T must be > 0");
  nodes_[id].temperature = temperature;
}

std::vector<double> ThermalNetwork::evaluate_conductances(const Vector& temps) const {
  std::vector<double> g(conductors_.size());
  for (std::size_t i = 0; i < conductors_.size(); ++i) {
    const Conductor& c = conductors_[i];
    if (c.fn) {
      const double val = c.fn(temps[c.a], temps[c.b]);
      if (!(val >= 0.0) || !std::isfinite(val))
        throw std::runtime_error("ThermalNetwork: nonlinear conductor returned invalid value");
      g[i] = val;
    } else {
      g[i] = c.g;
    }
  }
  return g;
}

Vector ThermalNetwork::solve_linearized(const std::vector<double>& g_values) const {
  // Map diffusion nodes to unknown indices.
  std::vector<std::ptrdiff_t> unknown_index(nodes_.size(), -1);
  std::size_t n_unknown = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].boundary) unknown_index[i] = static_cast<std::ptrdiff_t>(n_unknown++);
  if (n_unknown == 0) {
    Vector all(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) all[i] = nodes_[i].temperature;
    return all;
  }

  Matrix g(n_unknown, n_unknown);
  Vector rhs(n_unknown, 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].boundary) rhs[static_cast<std::size_t>(unknown_index[i])] = nodes_[i].load;

  for (std::size_t ci = 0; ci < conductors_.size(); ++ci) {
    const Conductor& c = conductors_[ci];
    const double gv = g_values[ci];
    if (gv == 0.0) continue;
    const std::ptrdiff_t ia = unknown_index[c.a];
    const std::ptrdiff_t ib = unknown_index[c.b];
    if (ia >= 0 && ib >= 0) {
      const auto ua = static_cast<std::size_t>(ia);
      const auto ub = static_cast<std::size_t>(ib);
      g(ua, ua) += gv;
      g(ub, ub) += gv;
      g(ua, ub) -= gv;
      g(ub, ua) -= gv;
    } else if (ia >= 0) {
      const auto ua = static_cast<std::size_t>(ia);
      g(ua, ua) += gv;
      rhs[ua] += gv * nodes_[c.b].temperature;
    } else if (ib >= 0) {
      const auto ub = static_cast<std::size_t>(ib);
      g(ub, ub) += gv;
      rhs[ub] += gv * nodes_[c.a].temperature;
    }
  }

  const Vector x = numeric::CholeskyFactorization(g).solve(rhs);
  Vector all(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    all[i] = nodes_[i].boundary ? nodes_[i].temperature
                                : x[static_cast<std::size_t>(unknown_index[i])];
  return all;
}

SteadySolution ThermalNetwork::solve_steady(const SteadyOptions& opts) const {
  if (nodes_.empty()) throw std::logic_error("solve_steady: empty network");
  // Initial guess: mean boundary temperature, or user override.
  double t0 = opts.initial_guess;
  if (t0 <= 0.0) {
    double acc = 0.0;
    std::size_t nb = 0;
    for (const Node& n : nodes_)
      if (n.boundary) {
        acc += n.temperature;
        ++nb;
      }
    t0 = (nb > 0) ? acc / static_cast<double>(nb) : 300.0;
  }
  Vector temps(nodes_.size(), t0);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].boundary) temps[i] = nodes_[i].temperature;

  const bool nonlinear =
      std::any_of(conductors_.begin(), conductors_.end(),
                  [](const Conductor& c) { return static_cast<bool>(c.fn); });

  static thread_local obs::CounterHandle steady_solves{"network.steady_solves"};
  static thread_local obs::CounterHandle picard_passes{"network.picard_passes"};
  steady_solves.add();
  obs::ScopedTimer span("network.solve_steady");

  SteadySolution sol;
  const std::size_t max_it = nonlinear ? opts.max_picard_iterations : 1;
  for (std::size_t it = 0; it < max_it; ++it) {
    picard_passes.add();
    const auto g = evaluate_conductances(temps);
    const Vector next = solve_linearized(g);
    double delta = 0.0;
    for (std::size_t i = 0; i < temps.size(); ++i)
      delta = std::max(delta, std::fabs(next[i] - temps[i]));
    sol.iterations = it + 1;
    if (!nonlinear || delta < opts.tolerance) {
      // Linear problems solve exactly in one pass; converged nonlinear
      // iterates take the unrelaxed solution so conductances and
      // temperatures are self-consistent.
      temps = next;
      sol.converged = true;
      break;
    }
    for (std::size_t i = 0; i < temps.size(); ++i)
      temps[i] = temps[i] + opts.relaxation * (next[i] - temps[i]);
  }

  sol.temperatures = temps;
  // Energy residual: total load vs heat absorbed by boundaries.
  double loads = 0.0;
  for (const Node& n : nodes_)
    if (!n.boundary) loads += n.load;
  double boundary_in = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].boundary) boundary_in += node_heat_flow(i, temps);
  sol.energy_residual = std::fabs(loads + boundary_in);
  return sol;
}

SteadySolution ThermalNetwork::solve_steady(ExecutionContext& ctx,
                                            const SteadyOptions& opts) const {
  const ExecutionContext::Use use(ctx);
  return solve_steady(opts);
}

double ThermalNetwork::node_heat_flow(NodeId id, const Vector& temps) const {
  check_node(id);
  const auto g = evaluate_conductances(temps);
  double flow = 0.0;  // positive = heat leaving `id` into the network
  for (std::size_t ci = 0; ci < conductors_.size(); ++ci) {
    const Conductor& c = conductors_[ci];
    if (c.a == id) flow += g[ci] * (temps[c.a] - temps[c.b]);
    if (c.b == id) flow += g[ci] * (temps[c.b] - temps[c.a]);
  }
  return flow;
}

// --- NetworkTransientStepper ------------------------------------------------

NetworkTransientStepper::NetworkTransientStepper(const ThermalNetwork& net,
                                                 const SteadyOptions& opts, NetworkDrive drive)
    : net_(&net),
      opts_(opts),
      drive_(std::move(drive)),
      unknown_index_(net.nodes_.size(), -1) {
  for (std::size_t i = 0; i < net.nodes_.size(); ++i)
    if (!net.nodes_[i].boundary) unknown_index_[i] = static_cast<std::ptrdiff_t>(n_unknown_++);
}

std::size_t NetworkTransientStepper::state_size() const { return net_->nodes_.size(); }

double NetworkTransientStepper::boundary_temp(double t, std::size_t i) const {
  // The drive re-resolves the boundary per step; the undriven path reads
  // the stored value.
  const double stored = net_->nodes_[i].temperature;
  return drive_.boundary_temperature ? drive_.boundary_temperature(t, i, stored) : stored;
}

void NetworkTransientStepper::apply_boundaries(double t, Vector& temps) const {
  for (std::size_t i = 0; i < net_->nodes_.size(); ++i)
    if (net_->nodes_[i].boundary) temps[i] = boundary_temp(t, i);
}

double NetworkTransientStepper::error_norm(const Vector& a, const Vector& b) const {
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) err = std::max(err, std::fabs(a[i] - b[i]));
  return err;
}

std::size_t NetworkTransientStepper::step(Vector& temps, double t_next, double dt) {
  core::check_step_size("NetworkTransientStepper::step", dt);
  core::check_state_size("NetworkTransientStepper::step", temps.size(), net_->nodes_.size());
  const auto& nodes = net_->nodes_;
  const auto& conductors = net_->conductors_;

  constexpr double kCapFloor = 1e-6;  // quasi-steady nodes get a tiny capacitance

  static thread_local obs::CounterHandle transient_steps{"network.transient_steps"};
  static thread_local obs::CounterHandle transient_picard{"network.transient_picard_passes"};
  transient_steps.add();
  // Implicit Euler: the drive is sampled at the step's end time.
  const double load_scale = drive_.load_scale ? drive_.load_scale(t_next) : 1.0;
  // A few Picard passes per implicit step to handle nonlinear conductors.
  Vector iterate = temps;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i].boundary) iterate[i] = boundary_temp(t_next, i);
  std::size_t passes = 0;
  for (std::size_t pic = 0; pic < 5; ++pic) {
    transient_picard.add();
    passes += 1;
    const auto gv = net_->evaluate_conductances(iterate);
    Matrix a(std::max<std::size_t>(n_unknown_, 1), std::max<std::size_t>(n_unknown_, 1));
    Vector rhs(std::max<std::size_t>(n_unknown_, 1), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const std::ptrdiff_t ui = unknown_index_[i];
      if (ui < 0) continue;
      const auto u = static_cast<std::size_t>(ui);
      const double cap = std::max(nodes[i].capacitance, kCapFloor);
      a(u, u) += cap / dt;
      rhs[u] += cap / dt * temps[i] + nodes[i].load * load_scale;
    }
    for (std::size_t ci = 0; ci < conductors.size(); ++ci) {
      const ThermalNetwork::Conductor& c = conductors[ci];
      const double g = gv[ci];
      if (g == 0.0) continue;
      const std::ptrdiff_t ia = unknown_index_[c.a];
      const std::ptrdiff_t ib = unknown_index_[c.b];
      if (ia >= 0 && ib >= 0) {
        const auto ua = static_cast<std::size_t>(ia);
        const auto ub = static_cast<std::size_t>(ib);
        a(ua, ua) += g;
        a(ub, ub) += g;
        a(ua, ub) -= g;
        a(ub, ua) -= g;
      } else if (ia >= 0) {
        const auto ua = static_cast<std::size_t>(ia);
        a(ua, ua) += g;
        rhs[ua] += g * boundary_temp(t_next, c.b);
      } else if (ib >= 0) {
        const auto ub = static_cast<std::size_t>(ib);
        a(ub, ub) += g;
        rhs[ub] += g * boundary_temp(t_next, c.a);
      }
    }
    Vector x(n_unknown_, 0.0);
    if (n_unknown_ > 0) x = numeric::CholeskyFactorization(a).solve(rhs);
    Vector next(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
      next[i] = nodes[i].boundary ? boundary_temp(t_next, i)
                                  : x[static_cast<std::size_t>(unknown_index_[i])];
    double delta = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i)
      delta = std::max(delta, std::fabs(next[i] - iterate[i]));
    iterate = next;
    if (delta < opts_.tolerance) break;
  }
  temps = iterate;
  return passes;
}

TransientSolution ThermalNetwork::march_transient(double t_end, double dt,
                                                  const Vector& initial_temperatures,
                                                  const SteadyOptions& opts,
                                                  const NetworkDrive* drive) const {
  dt = core::check_march_window("ThermalNetwork::solve_transient", t_end, dt);
  core::check_state_size("ThermalNetwork::solve_transient", initial_temperatures.size(),
                         nodes_.size());

  NetworkTransientStepper stepper(*this, opts, drive ? *drive : NetworkDrive{});
  Vector temps = initial_temperatures;
  stepper.apply_boundaries(0.0, temps);

  TransientSolution out;
  out.times.push_back(0.0);
  out.temperatures.push_back(temps);

  obs::ScopedTimer span("network.solve_transient");
  core::march_fixed(stepper, temps, t_end, dt, [&](double t_next, const Vector& state) {
    out.times.push_back(t_next);
    out.temperatures.push_back(state);
  });
  return out;
}

TransientSolution ThermalNetwork::solve_transient(double t_end, double dt,
                                                  const Vector& initial_temperatures,
                                                  const SteadyOptions& opts) const {
  return march_transient(t_end, dt, initial_temperatures, opts, nullptr);
}

TransientSolution ThermalNetwork::solve_transient(double t_end, double dt,
                                                  const Vector& initial_temperatures,
                                                  const NetworkDrive& drive,
                                                  const SteadyOptions& opts) const {
  return march_transient(t_end, dt, initial_temperatures, opts, &drive);
}

TransientSolution ThermalNetwork::solve_transient(ExecutionContext& ctx, double t_end,
                                                  double dt,
                                                  const Vector& initial_temperatures,
                                                  const NetworkDrive& drive,
                                                  const SteadyOptions& opts) const {
  const ExecutionContext::Use use(ctx);
  return march_transient(t_end, dt, initial_temperatures, opts, &drive);
}

TransientSolution ThermalNetwork::solve_transient(ExecutionContext& ctx, double t_end,
                                                  double dt,
                                                  const Vector& initial_temperatures,
                                                  const SteadyOptions& opts) const {
  const ExecutionContext::Use use(ctx);
  return solve_transient(t_end, dt, initial_temperatures, opts);
}

}  // namespace aeropack::thermal
