#include "thermal/radiation.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/solve_dense.hpp"
#include "thermal/convection.hpp"

namespace aeropack::thermal {

using numeric::Matrix;
using numeric::Vector;
using std::numbers::pi;

double view_factor_parallel_rectangles(double a, double b, double c) {
  if (a <= 0.0 || b <= 0.0 || c <= 0.0)
    throw std::invalid_argument("view_factor_parallel_rectangles: non-positive dimension");
  const double x = a / c;
  const double y = b / c;
  const double x2 = x * x, y2 = y * y;
  const double term1 = std::log(std::sqrt((1.0 + x2) * (1.0 + y2) / (1.0 + x2 + y2)));
  const double term2 = x * std::sqrt(1.0 + y2) * std::atan(x / std::sqrt(1.0 + y2));
  const double term3 = y * std::sqrt(1.0 + x2) * std::atan(y / std::sqrt(1.0 + x2));
  const double term4 = x * std::atan(x) + y * std::atan(y);
  return 2.0 / (pi * x * y) * (term1 + term2 + term3 - term4);
}

double view_factor_perpendicular_rectangles(double w, double h, double l) {
  if (w <= 0.0 || h <= 0.0 || l <= 0.0)
    throw std::invalid_argument("view_factor_perpendicular_rectangles: non-positive dimension");
  const double hh = h / l;
  const double ww = w / l;
  const double h2 = hh * hh, w2 = ww * ww;
  const double a = ww * std::atan(1.0 / ww) + hh * std::atan(1.0 / hh) -
                   std::sqrt(h2 + w2) * std::atan(1.0 / std::sqrt(h2 + w2));
  const double f1 = (1.0 + w2) * (1.0 + h2) / (1.0 + w2 + h2);
  const double f2 = w2 * (1.0 + w2 + h2) / ((1.0 + w2) * (w2 + h2));
  const double f3 = h2 * (1.0 + h2 + w2) / ((1.0 + h2) * (h2 + w2));
  const double b = 0.25 * std::log(f1 * std::pow(f2, w2) * std::pow(f3, h2));
  return (a + b) / (pi * ww);
}

RadiationEnclosure::RadiationEnclosure(std::vector<RadiationSurface> surfaces,
                                       Matrix view_factors)
    : surfaces_(std::move(surfaces)), f_(std::move(view_factors)) {
  const std::size_t n = surfaces_.size();
  if (n < 2) throw std::invalid_argument("RadiationEnclosure: need >= 2 surfaces");
  if (!f_.square() || f_.rows() != n)
    throw std::invalid_argument("RadiationEnclosure: view-factor matrix shape");
  for (const RadiationSurface& s : surfaces_) {
    if (s.area <= 0.0) throw std::invalid_argument("RadiationEnclosure: surface area");
    if (s.emissivity <= 0.0 || s.emissivity > 1.0)
      throw std::invalid_argument("RadiationEnclosure: emissivity must be in (0, 1]");
  }
  // Enforce reciprocity from the provided upper triangle, check summation.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      f_(j, i) = f_(i, j) * surfaces_[i].area / surfaces_[j].area;
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += f_(i, j);
    if (std::fabs(sum - 1.0) > 0.02)
      throw std::invalid_argument("RadiationEnclosure: view factors of surface " +
                                  surfaces_[i].name + " sum to " + std::to_string(sum));
  }
}

RadiationSolution RadiationEnclosure::solve() const {
  const std::size_t n = surfaces_.size();
  Matrix a(n, n);
  Vector rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const RadiationSurface& s = surfaces_[i];
    if (s.temperature > 0.0) {
      // J_i - (1 - e) sum F_ij J_j = e sigma T^4
      for (std::size_t j = 0; j < n; ++j)
        a(i, j) = ((i == j) ? 1.0 : 0.0) - (1.0 - s.emissivity) * f_(i, j);
      rhs[i] = s.emissivity * kStefanBoltzmann * std::pow(s.temperature, 4.0);
    } else {
      // Adiabatic (reradiating): J_i = sum F_ij J_j.
      for (std::size_t j = 0; j < n; ++j) a(i, j) = ((i == j) ? 1.0 : 0.0) - f_(i, j);
      rhs[i] = 0.0;
    }
  }
  const Vector j = numeric::solve(a, rhs);

  RadiationSolution sol;
  sol.radiosity = j;
  sol.net_heat.resize(n);
  sol.temperatures.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double irradiation = 0.0;
    for (std::size_t k = 0; k < n; ++k) irradiation += f_(i, k) * j[k];
    sol.net_heat[i] = surfaces_[i].area * (j[i] - irradiation);
    sol.temperatures[i] =
        (surfaces_[i].temperature > 0.0)
            ? surfaces_[i].temperature
            : std::pow(j[i] / kStefanBoltzmann, 0.25);  // floating: J = sigma T^4
  }
  return sol;
}

double RadiationEnclosure::linearized_conductance(std::size_t i, std::size_t j) const {
  if (i >= surfaces_.size() || j >= surfaces_.size() || i == j)
    throw std::invalid_argument("linearized_conductance: bad surface indices");
  const RadiationSurface& si = surfaces_[i];
  const RadiationSurface& sj = surfaces_[j];
  if (si.temperature <= 0.0 || sj.temperature <= 0.0 ||
      std::fabs(si.temperature - sj.temperature) < 1e-9)
    throw std::invalid_argument(
        "linearized_conductance: both temperatures must be prescribed and distinct");
  const auto sol = solve();
  const double q_ij = si.area * f_(i, j) * (sol.radiosity[i] - sol.radiosity[j]);
  return q_ij / (si.temperature - sj.temperature);
}

double two_surface_exchange(double a1, double e1, double t1, double a2, double e2, double t2) {
  if (a1 <= 0.0 || a2 <= 0.0 || e1 <= 0.0 || e1 > 1.0 || e2 <= 0.0 || e2 > 1.0)
    throw std::invalid_argument("two_surface_exchange: invalid surfaces");
  const double num = kStefanBoltzmann * (std::pow(t1, 4.0) - std::pow(t2, 4.0));
  const double den = 1.0 / e1 + (a1 / a2) * (1.0 / e2 - 1.0);
  return a1 * num / den;
}

}  // namespace aeropack::thermal
