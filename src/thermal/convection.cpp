#include "thermal/convection.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::thermal {

namespace {
materials::AirState film_air(double t_surface_k, double t_inf_k, double pressure_pa) {
  return materials::air_at(0.5 * (t_surface_k + t_inf_k), pressure_pa);
}
constexpr double g_accel = 9.80665;
}  // namespace

double rayleigh(double t_surface_k, double t_inf_k, double length,
                const materials::AirState& film) {
  if (length <= 0.0) throw std::invalid_argument("rayleigh: length must be positive");
  const double dt = std::fabs(t_surface_k - t_inf_k);
  const double nu = film.kinematic_viscosity();
  const double alpha = film.diffusivity();
  return g_accel * film.beta * dt * length * length * length / (nu * alpha);
}

double h_natural_vertical_plate(double t_surface_k, double t_inf_k, double height,
                                double pressure_pa) {
  const auto film = film_air(t_surface_k, t_inf_k, pressure_pa);
  const double ra = rayleigh(t_surface_k, t_inf_k, height, film);
  if (ra <= 0.0) return 0.0;
  // Churchill & Chu, valid for all Ra.
  const double pr_term = std::pow(1.0 + std::pow(0.492 / film.prandtl, 9.0 / 16.0), 8.0 / 27.0);
  const double nu = std::pow(0.825 + 0.387 * std::pow(ra, 1.0 / 6.0) / pr_term, 2.0);
  return nu * film.conductivity / height;
}

double h_natural_horizontal_up(double t_surface_k, double t_inf_k, double length,
                               double pressure_pa) {
  const auto film = film_air(t_surface_k, t_inf_k, pressure_pa);
  const double ra = rayleigh(t_surface_k, t_inf_k, length, film);
  if (ra <= 0.0) return 0.0;
  // McAdams: Nu = 0.54 Ra^1/4 (1e4..1e7), 0.15 Ra^1/3 above.
  const double nu = (ra < 1e7) ? 0.54 * std::pow(ra, 0.25) : 0.15 * std::cbrt(ra);
  return nu * film.conductivity / length;
}

double h_natural_horizontal_down(double t_surface_k, double t_inf_k, double length,
                                 double pressure_pa) {
  const auto film = film_air(t_surface_k, t_inf_k, pressure_pa);
  const double ra = rayleigh(t_surface_k, t_inf_k, length, film);
  if (ra <= 0.0) return 0.0;
  const double nu = 0.27 * std::pow(ra, 0.25);
  return nu * film.conductivity / length;
}

double h_natural_horizontal_cylinder(double t_surface_k, double t_inf_k, double diameter,
                                     double pressure_pa) {
  const auto film = film_air(t_surface_k, t_inf_k, pressure_pa);
  const double ra = rayleigh(t_surface_k, t_inf_k, diameter, film);
  if (ra <= 0.0) return 0.0;
  const double pr_term = std::pow(1.0 + std::pow(0.559 / film.prandtl, 9.0 / 16.0), 8.0 / 27.0);
  const double nu = std::pow(0.60 + 0.387 * std::pow(ra, 1.0 / 6.0) / pr_term, 2.0);
  return nu * film.conductivity / diameter;
}

double h_forced_flat_plate(double velocity, double length, double t_film_k,
                           double pressure_pa) {
  if (velocity < 0.0 || length <= 0.0)
    throw std::invalid_argument("h_forced_flat_plate: invalid velocity or length");
  if (velocity == 0.0) return 0.0;
  const auto air = materials::air_at(t_film_k, pressure_pa);
  const double re = velocity * length / air.kinematic_viscosity();
  const double pr = air.prandtl;
  constexpr double re_crit = 5e5;
  double nu;
  if (re <= re_crit) {
    nu = 0.664 * std::sqrt(re) * std::cbrt(pr);
  } else {
    // Mixed boundary layer average (Incropera eq. 7.38).
    nu = (0.037 * std::pow(re, 0.8) - 871.0) * std::cbrt(pr);
  }
  return nu * air.conductivity / length;
}

double h_forced_duct(double velocity, double hydraulic_diameter, double t_film_k,
                     double pressure_pa) {
  if (velocity < 0.0 || hydraulic_diameter <= 0.0)
    throw std::invalid_argument("h_forced_duct: invalid velocity or diameter");
  if (velocity == 0.0) return 0.0;
  const auto air = materials::air_at(t_film_k, pressure_pa);
  const double re = velocity * hydraulic_diameter / air.kinematic_viscosity();
  double nu;
  if (re < 2300.0) {
    nu = 7.54;  // parallel plates, constant wall temperature, fully developed
  } else {
    nu = 0.023 * std::pow(re, 0.8) * std::pow(air.prandtl, 0.4);
  }
  return nu * air.conductivity / hydraulic_diameter;
}

double h_radiation(double t_surface_k, double t_surroundings_k, double emissivity) {
  if (emissivity < 0.0 || emissivity > 1.0)
    throw std::invalid_argument("h_radiation: emissivity must be in [0, 1]");
  const double ts = t_surface_k, ta = t_surroundings_k;
  return emissivity * kStefanBoltzmann * (ts * ts + ta * ta) * (ts + ta);
}

double h_natural_plate(SurfaceOrientation o, double t_surface_k, double t_inf_k,
                       double characteristic_length, double pressure_pa) {
  switch (o) {
    case SurfaceOrientation::Vertical:
      return h_natural_vertical_plate(t_surface_k, t_inf_k, characteristic_length, pressure_pa);
    case SurfaceOrientation::HorizontalUp:
      return h_natural_horizontal_up(t_surface_k, t_inf_k, characteristic_length, pressure_pa);
    case SurfaceOrientation::HorizontalDown:
      return h_natural_horizontal_down(t_surface_k, t_inf_k, characteristic_length, pressure_pa);
  }
  throw std::logic_error("h_natural_plate: unknown orientation");
}

}  // namespace aeropack::thermal
