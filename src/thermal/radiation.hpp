// Gray-body enclosure radiation: view factors for the canonical rectangle
// configurations and an N-surface radiosity network — the radiation part of
// the finite-volume tool's job inside sealed avionics boxes, where a hot
// board often dumps a third of its heat to the lid by radiation alone.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "numeric/dense.hpp"

namespace aeropack::thermal {

/// View factor between two identical, directly opposed parallel rectangles
/// (a x b) separated by distance c (standard closed form).
double view_factor_parallel_rectangles(double a, double b, double c);

/// View factor between two perpendicular rectangles sharing a common edge of
/// length l: from the horizontal (w x l) to the vertical (h x l).
double view_factor_perpendicular_rectangles(double w, double h, double l);

/// View factor from a small convex surface to an enclosing surface: 1.
/// (provided for completeness / readability at call sites)
constexpr double view_factor_to_enclosure() { return 1.0; }

/// One surface of a radiating enclosure.
struct RadiationSurface {
  std::string name;
  double area = 0.0;        ///< [m^2]
  double emissivity = 0.9;  ///< [-]
  double temperature = 0.0; ///< prescribed [K]; <= 0 marks an adiabatic
                            ///< (reradiating) surface whose T floats
};

/// Result of a radiosity solve.
struct RadiationSolution {
  numeric::Vector radiosity;      ///< J_i [W/m^2]
  numeric::Vector net_heat;       ///< q_i, positive = surface emits net [W]
  numeric::Vector temperatures;   ///< all surfaces incl. floated ones [K]
};

/// N-surface gray diffuse enclosure. View factors must satisfy the
/// summation rule (checked to 2%) and reciprocity (enforced from the upper
/// triangle you provide).
class RadiationEnclosure {
 public:
  /// `surfaces` with prescribed or floating temperatures; `view_factors`
  /// is the full F matrix (row i: fractions leaving i that reach j).
  RadiationEnclosure(std::vector<RadiationSurface> surfaces, numeric::Matrix view_factors);

  /// Radiosity solve. Floating (adiabatic) surfaces satisfy q_i = 0.
  RadiationSolution solve() const;

  /// Linearized radiative conductance between surfaces i and j at the
  /// current prescribed temperatures (for embedding in ThermalNetwork):
  /// G_ij = q_ij / (T_i - T_j) from a two-surface exchange through the
  /// enclosure. Requires both temperatures prescribed and distinct.
  double linearized_conductance(std::size_t i, std::size_t j) const;

  std::size_t surface_count() const { return surfaces_.size(); }

 private:
  std::vector<RadiationSurface> surfaces_;
  numeric::Matrix f_;
};

/// Two-surface enclosure net exchange (parallel plates / enclosed body):
/// q = sigma (T1^4 - T2^4) / (1/e1 + (A1/A2)(1/e2 - 1)) * A1 * F12-adjusted.
/// This is the classic engineering formula for A1 enclosed by A2 (F12 = 1).
double two_surface_exchange(double a1, double e1, double t1, double a2, double e2, double t2);

}  // namespace aeropack::thermal
