// Lumped-parameter thermal resistance network (the paper's Fig. 4 shows this
// abstraction explicitly: "Resistive network model").
//
// Nodes are either diffusion nodes (unknown temperature, optional thermal
// capacitance) or boundary nodes (prescribed temperature). Conductors may be
// linear (constant W/K) or nonlinear (a callback returning conductance as a
// function of the two end temperatures — used for natural convection and
// radiation whose film coefficients depend on the unknown temperature).
//
// All temperatures are absolute [K].
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "numeric/dense.hpp"

namespace aeropack {
class ExecutionContext;
}

namespace aeropack::thermal {

using NodeId = std::size_t;

/// Conductance [W/K] as a function of the two end temperatures [K].
using ConductanceFn = std::function<double(double, double)>;

struct SteadyOptions {
  std::size_t max_picard_iterations = 200;
  double tolerance = 1e-8;   ///< max |dT| between Picard iterations [K]
  double relaxation = 0.7;   ///< under-relaxation for nonlinear conductors
  double initial_guess = 0.0;  ///< 0 => mean boundary temperature
};

struct SteadySolution {
  numeric::Vector temperatures;  ///< all nodes, by NodeId [K]
  std::size_t iterations = 0;
  bool converged = false;
  double energy_residual = 0.0;  ///< |sum loads - sum boundary flows| [W]
};

struct TransientSolution {
  numeric::Vector times;
  std::vector<numeric::Vector> temperatures;  ///< per step, all nodes [K]
};

/// Time-varying drive for a transient network march: the lumped counterpart
/// of thermal::FvDrive. Boundary-node temperatures and heat loads are
/// re-resolved at the end time of every implicit step, so flight-phase
/// ambient histories and duty-cycled dissipation become first-class network
/// campaigns instead of frozen t=0 snapshots.
struct NetworkDrive {
  /// (t, node, stored) -> boundary temperature [K] for that node at time t;
  /// `stored` is the node's set_boundary_temperature value. Must be pure.
  /// Null = stored values throughout.
  std::function<double(double t, NodeId node, double stored)> boundary_temperature;
  /// Multiplier on every diffusion node's heat load at time t. Null = 1.
  std::function<double(double t)> load_scale;
};

class ThermalNetwork {
 public:
  /// Diffusion node with optional lumped capacitance [J/K].
  NodeId add_node(std::string name, double capacitance = 0.0);
  /// Boundary node at fixed temperature [K].
  NodeId add_boundary(std::string name, double temperature);

  /// Linear conductor, conductance [W/K] (must be > 0).
  void add_conductor(NodeId a, NodeId b, double conductance);
  /// Convenience: resistance [K/W].
  void add_resistor(NodeId a, NodeId b, double resistance);
  /// Nonlinear conductor; `g(Ta, Tb)` must return a conductance >= 0.
  void add_nonlinear_conductor(NodeId a, NodeId b, ConductanceFn g);
  /// Constant heat load [W] into a diffusion node.
  void add_heat_load(NodeId node, double watts);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(NodeId id) const;
  bool is_boundary(NodeId id) const;
  /// Change a boundary node's temperature (for sweeps).
  void set_boundary_temperature(NodeId id, double temperature);
  /// Change a node's heat load to a new total (for sweeps).
  void set_heat_load(NodeId node, double watts);

  SteadySolution solve_steady(const SteadyOptions& opts = {}) const;
  /// Same solve, pinned to an ExecutionContext (kernels on the context's
  /// pool, telemetry in its registry; bit-identical results).
  SteadySolution solve_steady(ExecutionContext& ctx, const SteadyOptions& opts = {}) const;

  /// Implicit-Euler transient from a uniform or given initial state.
  /// Diffusion nodes with zero capacitance are treated as quasi-steady
  /// (arithmetic: tiny capacitance floor). Throws on dt <= 0.
  TransientSolution solve_transient(double t_end, double dt,
                                    const numeric::Vector& initial_temperatures,
                                    const SteadyOptions& opts = {}) const;
  TransientSolution solve_transient(ExecutionContext& ctx, double t_end, double dt,
                                    const numeric::Vector& initial_temperatures,
                                    const SteadyOptions& opts = {}) const;

  /// Driver-aware transient: boundary temperatures and load scaling are
  /// re-resolved through `drive` at every step's end time. The undriven
  /// overloads are the drive-less special case of the same march.
  TransientSolution solve_transient(double t_end, double dt,
                                    const numeric::Vector& initial_temperatures,
                                    const NetworkDrive& drive,
                                    const SteadyOptions& opts = {}) const;
  TransientSolution solve_transient(ExecutionContext& ctx, double t_end, double dt,
                                    const numeric::Vector& initial_temperatures,
                                    const NetworkDrive& drive,
                                    const SteadyOptions& opts = {}) const;

  /// Net heat flowing from node `id` into the network at a given solution [W].
  double node_heat_flow(NodeId id, const numeric::Vector& temperatures) const;

 private:
  friend class NetworkTransientStepper;

  struct Node {
    std::string name;
    bool boundary = false;
    double temperature = 0.0;   // boundaries only
    double capacitance = 0.0;   // diffusion only
    double load = 0.0;          // diffusion only
  };
  struct Conductor {
    NodeId a, b;
    double g = 0.0;        // linear value
    ConductanceFn fn;      // nonlinear if set
  };

  void check_node(NodeId id) const;
  /// Shared implicit-Euler march; `drive` null = the undriven overloads.
  TransientSolution march_transient(double t_end, double dt,
                                    const numeric::Vector& initial_temperatures,
                                    const SteadyOptions& opts, const NetworkDrive* drive) const;
  /// Solve the linear system for a fixed set of conductance values.
  numeric::Vector solve_linearized(const std::vector<double>& g_values) const;
  std::vector<double> evaluate_conductances(const numeric::Vector& temps) const;

  std::vector<Node> nodes_;
  std::vector<Conductor> conductors_;
};

/// Reusable driven implicit-Euler stepper over a ThermalNetwork — the
/// lumped-network implementation of the core::TransientSystem concept
/// (core/transient_engine.hpp). One step resolves boundary temperatures and
/// load scaling through the drive at the step's end time, then runs up to
/// five Picard passes of the dense implicit system (nonlinear conductors
/// linearize per pass); the returned cost is the Picard pass count, i.e.
/// the number of dense solves spent. Step size may change freely between
/// calls — capacitance/dt is assembled per pass — which is what the
/// adaptive mission march needs.
///
/// The referenced network must outlive the stepper and stay unmodified
/// while it is in use. The drive is copied; empty callbacks mean the
/// network's stored boundary temperatures and unscaled loads.
class NetworkTransientStepper {
 public:
  explicit NetworkTransientStepper(const ThermalNetwork& net, const SteadyOptions& opts = {},
                                   NetworkDrive drive = {});

  // --- core::TransientSystem concept ------------------------------------
  std::size_t state_size() const;
  /// One implicit Euler step of size `dt` ending at mission time `t_next`.
  /// `temps` holds every node (boundary entries are overwritten with the
  /// drive-resolved values at `t_next`); returns the Picard pass count.
  std::size_t step(numeric::Vector& temps, double t_next, double dt);
  /// Controller error metric: serial max-norm node difference [K].
  double error_norm(const numeric::Vector& a, const numeric::Vector& b) const;

  /// Resolve the boundary-node entries of `temps` at mission time `t`
  /// (diffusion entries untouched) — the initial-state fixup every march
  /// applies before its first step.
  void apply_boundaries(double t, numeric::Vector& temps) const;

 private:
  double boundary_temp(double t, std::size_t i) const;

  const ThermalNetwork* net_;
  SteadyOptions opts_;
  NetworkDrive drive_;
  std::vector<std::ptrdiff_t> unknown_index_;
  std::size_t n_unknown_ = 0;
};

}  // namespace aeropack::thermal
