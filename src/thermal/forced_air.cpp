#include "thermal/forced_air.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "thermal/convection.hpp"

namespace aeropack::thermal {

double ArincAirSupply::mass_flow(double power_w) const {
  if (power_w < 0.0) throw std::invalid_argument("mass_flow: negative power");
  return flow_per_kw * flow_multiplier * (power_w / 1000.0) / 3600.0;
}

double ArincAirSupply::air_rise(double power_w) const {
  const double mdot = mass_flow(power_w);
  if (mdot <= 0.0) return 0.0;
  const auto air = materials::air_at(inlet_temperature, pressure);
  return power_w / (mdot * air.specific_heat);
}

double ArincAirSupply::outlet_temperature(double power_w) const {
  return inlet_temperature + air_rise(power_w);
}

HotSpotResult analyze_hot_spot(const ArincAirSupply& supply, const CardChannel& channel,
                               double module_power_w, double flux_w_per_m2,
                               double position_fraction, double surface_limit_k) {
  if (module_power_w <= 0.0) throw std::invalid_argument("analyze_hot_spot: power must be > 0");
  if (position_fraction < 0.0 || position_fraction > 1.0)
    throw std::invalid_argument("analyze_hot_spot: position fraction in [0, 1]");

  HotSpotResult r;
  const double mdot = supply.mass_flow(module_power_w);
  const auto air = materials::air_at(supply.inlet_temperature, supply.pressure);
  r.velocity = mdot / (air.density * channel.flow_area());
  r.local_air_temperature =
      supply.inlet_temperature + position_fraction * supply.air_rise(module_power_w);
  const double t_film = r.local_air_temperature;  // first-order film temperature
  r.h = h_forced_duct(r.velocity, channel.hydraulic_diameter(), t_film, supply.pressure);
  r.film_rise = (r.h > 0.0) ? flux_w_per_m2 / r.h : std::numeric_limits<double>::infinity();
  r.surface_temperature = r.local_air_temperature + r.film_rise;
  r.feasible = r.surface_temperature <= surface_limit_k;
  return r;
}

double required_flow_multiplier(const ArincAirSupply& supply, const CardChannel& channel,
                                double module_power_w, double flux_w_per_m2,
                                double position_fraction, double surface_limit_k) {
  ArincAirSupply probe = supply;
  for (double mult = 1.0; mult <= 100.0; mult *= 1.05) {
    probe.flow_multiplier = supply.flow_multiplier * mult;
    const auto r = analyze_hot_spot(probe, channel, module_power_w, flux_w_per_m2,
                                    position_fraction, surface_limit_k);
    if (r.feasible) return mult;
  }
  return std::numeric_limits<double>::infinity();
}

double spreading_resistance(double source_area, double plate_area, double thickness, double k,
                            double h) {
  if (source_area <= 0.0 || plate_area < source_area || thickness <= 0.0 || k <= 0.0 || h <= 0.0)
    throw std::invalid_argument("spreading_resistance: invalid geometry");
  // Circular-equivalent radii (Lee, Song, Au closed form).
  const double a = std::sqrt(source_area / std::numbers::pi);
  const double b = std::sqrt(plate_area / std::numbers::pi);
  const double eps = a / b;
  const double tau = thickness / b;
  const double bi = h * b / k;
  const double lambda = std::numbers::pi + 1.0 / (eps * std::sqrt(std::numbers::pi));
  const double phi = (std::tanh(lambda * tau) + lambda / bi) /
                     (1.0 + (lambda / bi) * std::tanh(lambda * tau));
  const double psi_avg = eps * tau / std::sqrt(std::numbers::pi) +
                         (1.0 - eps) * phi / std::sqrt(std::numbers::pi);
  const double r_spread = psi_avg / (k * a * std::sqrt(std::numbers::pi));
  // Total includes the 1-D slab and the film on the full plate.
  const double r_1d = thickness / (k * plate_area);
  const double r_film = 1.0 / (h * plate_area);
  return r_spread + r_1d + r_film;
}

}  // namespace aeropack::thermal
