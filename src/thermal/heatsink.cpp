#include "thermal/heatsink.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/rootfind.hpp"
#include "thermal/convection.hpp"
#include "thermal/fins.hpp"

namespace aeropack::thermal {

int HeatSink::fin_count() const {
  return static_cast<int>(std::floor((base_width + fin_gap) / (fin_thickness + fin_gap)));
}

double HeatSink::fin_area() const {
  return 2.0 * fin_count() * fin_height * base_length;
}

double HeatSink::exposed_base_area() const {
  const double covered = fin_count() * fin_thickness * base_length;
  return std::max(base_length * base_width - covered, 0.0);
}

void HeatSink::validate() const {
  if (base_length <= 0.0 || base_width <= 0.0 || base_thickness <= 0.0 || fin_height <= 0.0 ||
      fin_thickness <= 0.0 || fin_gap <= 0.0 || conductivity <= 0.0)
    throw std::invalid_argument("HeatSink: non-positive dimension");
  if (emissivity < 0.0 || emissivity > 1.0)
    throw std::invalid_argument("HeatSink: emissivity out of range");
  if (fin_count() < 2) throw std::invalid_argument("HeatSink: fewer than 2 fins fit");
}

namespace {

/// Fin efficiency of one rectangular fin at film coefficient h.
double fin_eta(const HeatSink& hs, double h) {
  if (h <= 0.0) return 1.0;
  // Straight fin, adiabatic tip, corrected length.
  const double lc = hs.fin_height + 0.5 * hs.fin_thickness;
  const double m = std::sqrt(2.0 * h / (hs.conductivity * hs.fin_thickness));
  return std::tanh(m * lc) / (m * lc);
}

double conductance_from_h(const HeatSink& hs, double h, double h_rad) {
  const double eta = fin_eta(hs, h);
  // Radiation only acts on the outer envelope (channels see themselves):
  // approximate with the envelope area = base + outer fin faces.
  const double a_envelope = hs.base_length * hs.base_width +
                            2.0 * hs.fin_height * hs.base_length;
  return h * (eta * hs.fin_area() + hs.exposed_base_area()) + h_rad * a_envelope;
}

}  // namespace

double heatsink_conductance_natural(const HeatSink& hs, double t_base_k, double t_ambient_k,
                                    double pressure_pa) {
  hs.validate();
  const double dt = std::max(std::fabs(t_base_k - t_ambient_k), 0.05);
  const double ts = t_ambient_k + dt;
  const auto film = materials::air_at(0.5 * (ts + t_ambient_k), pressure_pa);
  // Elenbaas channel: Ra_s based on the gap, plate height = base_length.
  const double s = hs.fin_gap;
  const double l = hs.base_length;
  const double ra_s = rayleigh(ts, t_ambient_k, s, film) * (s / l);
  // Elenbaas composite Nusselt (isothermal plates):
  const double nu = std::pow(std::pow(ra_s / 24.0, -1.9) +
                                 std::pow(0.59 * std::pow(ra_s, 0.25), -1.9),
                             -1.0 / 1.9);
  const double h = nu * film.conductivity / s;
  const double h_rad = h_radiation(ts, t_ambient_k, hs.emissivity);
  return conductance_from_h(hs, h, h_rad);
}

double heatsink_conductance_forced(const HeatSink& hs, double velocity, double t_film_k,
                                   double pressure_pa) {
  hs.validate();
  if (velocity <= 0.0)
    throw std::invalid_argument("heatsink_conductance_forced: velocity must be > 0");
  // Channel velocity from flow-area blockage.
  const double blockage =
      hs.fin_gap / (hs.fin_gap + hs.fin_thickness);
  const double v_chan = velocity / std::max(blockage, 0.05);
  const double dh = 2.0 * hs.fin_gap * hs.fin_height / (hs.fin_gap + hs.fin_height);
  const double h = h_forced_duct(v_chan, dh, t_film_k, pressure_pa);
  return conductance_from_h(hs, h, 0.0);  // radiation negligible under forced flow
}

double heatsink_resistance(const HeatSink& hs, double t_base_k, double t_ambient_k,
                           double velocity, double pressure_pa) {
  const double g = (velocity > 0.0)
                       ? heatsink_conductance_forced(
                             hs, velocity, 0.5 * (t_base_k + t_ambient_k), pressure_pa)
                       : heatsink_conductance_natural(hs, t_base_k, t_ambient_k, pressure_pa);
  // Base-plate spreading is left to the caller (spreading_resistance); add
  // the through-base conduction term.
  const double r_base =
      hs.base_thickness / (hs.conductivity * hs.base_length * hs.base_width);
  return r_base + 1.0 / g;
}

double optimal_fin_gap_natural(double length, double t_base_k, double t_ambient_k,
                               double pressure_pa) {
  if (length <= 0.0) throw std::invalid_argument("optimal_fin_gap_natural: length");
  const double dt = std::max(std::fabs(t_base_k - t_ambient_k), 0.05);
  const auto film =
      materials::air_at(0.5 * (t_base_k + t_ambient_k), pressure_pa);
  // Bar-Cohen & Rohsenow: s_opt = 2.714 (L / Ra_L)^(1/4) * L^(3/4) form,
  // expressed via the plate Rayleigh number on L:
  const double ra_l = rayleigh(t_ambient_k + dt, t_ambient_k, length, film);
  return 2.714 * length / std::pow(ra_l, 0.25);
}

double heatsink_base_temperature(const HeatSink& hs, double power_w, double t_ambient_k,
                                 double velocity, double pressure_pa) {
  if (power_w < 0.0) throw std::invalid_argument("heatsink_base_temperature: negative power");
  if (power_w == 0.0) return t_ambient_k;
  const auto balance = [&](double t_base) {
    const double r = heatsink_resistance(hs, t_base, t_ambient_k, velocity, pressure_pa);
    return (t_base - t_ambient_k) / r - power_w;
  };
  return numeric::brent_auto_bracket(balance, t_ambient_k + 0.01, t_ambient_k + 20.0,
                                     t_ambient_k + 500.0);
}

}  // namespace aeropack::thermal
