// Structured 3-D finite-volume heat conduction solver — the toolkit's
// stand-in for the finite-volume CFD code (FloTHERM) the paper uses for
// Level-2/3 thermal design. Conjugate convection is represented by film
// coefficients on boundary faces (fixed h or a natural-convection
// correlation re-evaluated each Picard pass), which is exactly how the
// paper's design levels use the CFD tool: board/box conduction with
// film-coefficient boundaries.
//
// Grid: tensor-product cells, per-cell anisotropic conductivity, volumetric
// sources. Face conductances use the harmonic mean of cell conductivities
// (option: arithmetic, kept for the ablation bench). Steady solves assemble
// an SPD system solved by preconditioned CG; transient uses implicit Euler.
//
// All temperatures are absolute [K].
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "materials/solid.hpp"
#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"
#include "thermal/convection.hpp"

namespace aeropack {
class ExecutionContext;
}

namespace aeropack::thermal {

/// Tensor-product grid: cell sizes along each axis.
class FvGrid {
 public:
  FvGrid(numeric::Vector dx, numeric::Vector dy, numeric::Vector dz);
  /// Uniform grid over a box of size (lx, ly, lz) with (nx, ny, nz) cells.
  static FvGrid uniform(double lx, double ly, double lz, std::size_t nx, std::size_t ny,
                        std::size_t nz);

  std::size_t nx() const { return dx_.size(); }
  std::size_t ny() const { return dy_.size(); }
  std::size_t nz() const { return dz_.size(); }
  std::size_t cell_count() const { return nx() * ny() * nz(); }

  std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    return i + nx() * (j + ny() * k);
  }
  double dx(std::size_t i) const { return dx_[i]; }
  double dy(std::size_t j) const { return dy_[j]; }
  double dz(std::size_t k) const { return dz_[k]; }
  double cell_volume(std::size_t i, std::size_t j, std::size_t k) const {
    return dx_[i] * dy_[j] * dz_[k];
  }
  /// Cell-center coordinate along x (similarly y, z).
  double x_center(std::size_t i) const;
  double y_center(std::size_t j) const;
  double z_center(std::size_t k) const;
  double lx() const;
  double ly() const;
  double lz() const;

 private:
  numeric::Vector dx_, dy_, dz_;
};

/// Axis-aligned index box [i0, i1) x [j0, j1) x [k0, k1) for region setters.
struct CellRange {
  std::size_t i0 = 0, i1 = 0, j0 = 0, j1 = 0, k0 = 0, k1 = 0;
};

enum class Face { XMin, XMax, YMin, YMax, ZMin, ZMax };

enum class BoundaryKind {
  Adiabatic,
  FixedTemperature,
  Convection,           ///< fixed film coefficient + sink temperature
  ConvectionRadiation,  ///< fixed h + linearized radiation to the same sink
  NaturalConvection,    ///< h from a plate correlation, re-evaluated per pass
  HeatFlux,             ///< prescribed flux [W/m^2], positive into the body
};

struct BoundaryCondition {
  BoundaryKind kind = BoundaryKind::Adiabatic;
  double temperature = 293.15;  ///< sink / prescribed temperature [K]
  double h = 0.0;               ///< film coefficient [W/m^2 K]
  double flux = 0.0;            ///< [W/m^2]
  double emissivity = 0.0;      ///< for ConvectionRadiation
  SurfaceOrientation orientation = SurfaceOrientation::Vertical;  ///< NaturalConvection
  double characteristic_length = 0.1;                             ///< NaturalConvection [m]
  double pressure = 101325.0;                                     ///< NaturalConvection [Pa]

  static BoundaryCondition adiabatic() { return {}; }
  static BoundaryCondition fixed(double t_k);
  static BoundaryCondition convection(double h, double t_k);
  static BoundaryCondition convection_radiation(double h, double t_k, double emissivity);
  static BoundaryCondition natural(SurfaceOrientation o, double length, double t_k,
                                   double pressure = 101325.0);
  static BoundaryCondition heat_flux(double flux);
};

enum class FaceConductanceScheme { HarmonicMean, ArithmeticMean };

struct FvOptions {
  FaceConductanceScheme scheme = FaceConductanceScheme::HarmonicMean;
  std::size_t max_picard_iterations = 60;
  double picard_tolerance = 1e-6;  ///< max |dT| across passes [K]
  numeric::IterativeOptions linear;
};

struct FvSolution {
  numeric::Vector temperatures;  ///< per cell [K]
  std::size_t picard_iterations = 0;
  std::size_t linear_iterations = 0;  ///< total inner CG iterations
  /// Number of CSR symbolic assemblies performed. With the cached fast path
  /// this is 1 per solve regardless of Picard pass count — only boundary
  /// values are rewritten in place between passes.
  std::size_t structure_assemblies = 0;
  bool converged = false;
  double energy_residual = 0.0;  ///< |sources - boundary outflow| [W]
  double max_temperature = 0.0;
  double min_temperature = 0.0;
};

struct FvTransientSolution {
  numeric::Vector times;
  std::vector<numeric::Vector> temperatures;
  std::size_t linear_iterations = 0;       ///< total inner CG iterations
  std::size_t structure_assemblies = 0;    ///< symbolic assemblies (1 with caching)
};

/// Time-varying environment driver for a transient march. The undriven
/// solve_transient overloads resolve boundary conditions once, before the
/// step loop — correct only for environments frozen at t = 0. A drive makes
/// the environment a function of time: every step re-resolves each boundary
/// condition through `boundary` and scales the volumetric sources by
/// `power_scale`, both evaluated at the step's end time (implicit Euler),
/// without touching the assembled structure. The mission layer
/// (aeropack::mission) builds drives from mission::Profile; hand-written
/// drives are equally valid.
struct FvDrive {
  /// Transform a model boundary condition for mission time `t`. Called for
  /// every boundary cell-face on every step; must be pure (same inputs,
  /// same output) for the march to stay deterministic. Null = boundaries
  /// as stored on the model.
  std::function<BoundaryCondition(double t, Face face, const BoundaryCondition& bc)> boundary;
  /// Multiplier on volumetric sources at time `t` (prescribed boundary
  /// fluxes are environment inputs, not dissipation — they are never
  /// scaled). Null = 1.
  std::function<double(double t)> power_scale;
};

/// The assembled steady linear system A T = b of a model whose boundary
/// conditions are all temperature-independent (Adiabatic, FixedTemperature,
/// fixed-h Convection, HeatFlux). This is the operator the compact-model
/// reduction pipeline (aeropack::rom) projects onto its snapshot basis: the
/// matrix is SPD with the 7-point CSR structure, and the right-hand side is
/// affine in the boundary sink temperatures and source powers.
struct LinearSteadySystem {
  numeric::CsrMatrix matrix;  ///< SPD conduction + boundary-film operator
  numeric::Vector rhs;        ///< sources + flux terms + film * sink terms [W]
};

/// The immutable structural half of an FV solve: the 7-point CSR pattern,
/// every temperature-independent internal coefficient (face conductances,
/// contact interfaces, implicit-Euler capacity) — and nothing that depends
/// on sources or boundary conditions, which stay on the model and are
/// applied per solve into a private workspace. Two models that differ only
/// in loads/boundaries therefore share one FvAssembly, which is what the
/// scenario-service ArtifactCache exploits across a qualification campaign.
///
/// Shareability contract: all fields are written once by
/// FvModel::build_assembly and never mutated afterwards; concurrent solves
/// on distinct ExecutionContexts may read one assembly freely, and a solve
/// on a cached assembly is bitwise identical to the cold-start solve that
/// would have built it (gated by tests/svc/test_artifact_reuse.cpp).
struct FvAssembly {
  numeric::CsrMatrix matrix;            ///< pattern + boundary-free values
  std::vector<double> base_values;      ///< matrix values without boundary films
  std::vector<std::size_t> diag_index;  ///< per-row offset of the diagonal entry
  numeric::Vector capacity;             ///< rho*cp*V/dt per cell (transient only)
  double inv_dt = 0.0;                  ///< 0 for steady assemblies
  std::uint64_t structural_hash = 0;    ///< FvModel::structural_hash at build time
  /// Approximate resident size, for cost-aware cache eviction.
  std::size_t cost_bytes() const;
};

class FvModel {
 public:
  explicit FvModel(FvGrid grid);

  const FvGrid& grid() const { return grid_; }

  /// Fill the whole domain with a material.
  void set_material(const materials::SolidMaterial& m);
  /// Fill an index sub-box with a material.
  void set_material(const CellRange& r, const materials::SolidMaterial& m);
  /// Override per-axis conductivities in a sub-box (e.g. heat-pipe drain:
  /// very high kx). rho_cp untouched.
  void set_conductivity(const CellRange& r, double kx, double ky, double kz);

  /// Area-specific contact resistance [K m^2/W] on the z-face between cell
  /// layers k_plane and k_plane+1 (a TIM or bond line between a board and
  /// its drain). Applied over the whole plane; call once per interface.
  void add_interface_z(std::size_t k_plane, double specific_resistance);

  /// Add total power [W] uniformly distributed over a sub-box.
  void add_power(const CellRange& r, double watts);
  /// Add a volumetric source field: `qv(x, y, z)` [W/m^3] evaluated at each
  /// cell center (midpoint rule) and scaled by the cell volume. Used by the
  /// manufactured-solutions harness to inject spatially varying sources.
  void add_power_density(const std::function<double(double, double, double)>& qv);
  /// Clear all sources (for power sweeps).
  void clear_power();

  /// Default condition for one outer face of the domain.
  void set_boundary(Face f, const BoundaryCondition& bc);
  /// Override the condition on a rectangular patch of a face. The patch is
  /// specified by the in-plane index range of the face's cells.
  void set_boundary_patch(Face f, const CellRange& r, const BoundaryCondition& bc);
  /// Drop every patch override, restoring the per-face default everywhere.
  /// The compact-model builder (aeropack::rom) uses this to rebase a copied
  /// model onto its own port layout.
  void clear_boundary_overrides();

  FvSolution solve_steady(const FvOptions& opts = {}) const;
  /// Same solve, pinned to an ExecutionContext: kernels run on the context's
  /// pool and telemetry lands in the context's registry. Results are
  /// bit-identical to the pool-less overload at any thread count.
  FvSolution solve_steady(ExecutionContext& ctx, const FvOptions& opts = {}) const;

  /// Hash of everything a steady/transient assembly depends on: grid
  /// geometry, per-cell conductivities and capacities, z-interfaces, the
  /// face-conductance scheme and `inv_dt` — and deliberately NOT sources or
  /// boundary conditions, which are per-solve inputs. Equal hashes guarantee
  /// build_assembly would produce bitwise-identical artifacts, so this is
  /// the ArtifactCache key for FV assemblies.
  std::uint64_t structural_hash(const FvOptions& opts = {}, double inv_dt = 0.0) const;

  /// Assemble the shareable structural artifact once (counts one
  /// "fv.structure_assemblies"). `inv_dt > 0` bakes in the implicit-Euler
  /// capacity terms for a transient march with that step.
  std::shared_ptr<const FvAssembly> build_assembly(const FvOptions& opts = {},
                                                   double inv_dt = 0.0) const;

  /// Steady solve on a pre-built (possibly cache-shared) steady assembly:
  /// skips symbolic assembly entirely (structure_assemblies == 0 in the
  /// solution) and is bitwise identical to the assembling overload. Throws
  /// std::invalid_argument when the assembly's structural hash does not
  /// match this model at `opts` (it was built for different structure) or
  /// when it is a transient assembly.
  FvSolution solve_steady(const std::shared_ptr<const FvAssembly>& assembly,
                          const FvOptions& opts = {}) const;
  FvSolution solve_steady(ExecutionContext& ctx,
                          const std::shared_ptr<const FvAssembly>& assembly,
                          const FvOptions& opts = {}) const;

  /// Implicit Euler transient from a uniform initial temperature. `dt` is
  /// clamped to `t_end` (a march shorter than one step degenerates to a
  /// single implicit step of size `t_end`); throws on non-positive `dt` or
  /// `t_end`.
  FvTransientSolution solve_transient(double t_end, double dt, double t_initial,
                                      const FvOptions& opts = {}) const;
  FvTransientSolution solve_transient(ExecutionContext& ctx, double t_end, double dt,
                                      double t_initial, const FvOptions& opts = {}) const;

  /// Implicit Euler transient from a full per-cell initial field (needed by
  /// the manufactured-solutions transient ladder, whose exact initial state
  /// is spatially varying). Same time-step semantics as above.
  FvTransientSolution solve_transient(double t_end, double dt,
                                      const numeric::Vector& initial_temperatures,
                                      const FvOptions& opts = {}) const;
  FvTransientSolution solve_transient(ExecutionContext& ctx, double t_end, double dt,
                                      const numeric::Vector& initial_temperatures,
                                      const FvOptions& opts = {}) const;

  /// Driver-aware implicit Euler: boundary conditions and source scaling
  /// are re-resolved through `drive` at every step's end time, fixing the
  /// frozen-at-t=0 capture of the undriven overloads. Marches on a *steady*
  /// assembly (inv_dt == 0) — the capacity/dt term joins the diagonal
  /// during the per-step boundary rewrite — so one cache-shared artifact
  /// serves every step size and is the same artifact steady solves use. A
  /// caller-supplied `assembly` must be steady and match
  /// structural_hash(opts, 0.0) (std::invalid_argument otherwise); null
  /// assembles internally. Same step semantics as the undriven overloads.
  FvTransientSolution solve_transient(double t_end, double dt,
                                      const numeric::Vector& initial_temperatures,
                                      const FvDrive& drive, const FvOptions& opts = {},
                                      std::shared_ptr<const FvAssembly> assembly = nullptr) const;
  FvTransientSolution solve_transient(ExecutionContext& ctx, double t_end, double dt,
                                      const numeric::Vector& initial_temperatures,
                                      const FvDrive& drive, const FvOptions& opts = {},
                                      std::shared_ptr<const FvAssembly> assembly = nullptr) const;

  /// Assemble the steady system A T = b once and hand it out. Only valid for
  /// models whose boundary conditions are all temperature-independent; throws
  /// std::invalid_argument when any boundary face is ConvectionRadiation or
  /// NaturalConvection (those linearize per Picard pass and have no single
  /// constant operator). Used by aeropack::rom for snapshot generation and
  /// Galerkin projection, and by the verification ladder for energy-norm
  /// error measurements.
  LinearSteadySystem linearize_steady(const FvOptions& opts = {}) const;

  /// Lumped thermal capacity rho*cp*V [J/K] of every cell, in cell index
  /// order — the diagonal capacitance operator of the transient problem.
  numeric::Vector cell_capacities() const;

  /// Highest cell temperature within a sub-box of a solution.
  double region_max(const numeric::Vector& temps, const CellRange& r) const;
  /// Volume-average temperature within a sub-box.
  double region_mean(const numeric::Vector& temps, const CellRange& r) const;

  /// Whole-domain range helper.
  CellRange all_cells() const;

 private:
  friend class FvTransientStepper;

  struct FaceBc {
    BoundaryCondition bc;  // per boundary cell-face
  };

  void check_range(const CellRange& r) const;
  const BoundaryCondition& boundary_for(Face f, std::size_t a, std::size_t b) const;

  /// Per-solve mutable state layered over an immutable (possibly shared)
  /// FvAssembly: a working copy of the matrix for the boundary-film rewrite
  /// and this model's static right-hand side (sources + prescribed fluxes).
  /// Picard passes and time steps only rewrite the temperature-dependent
  /// boundary terms in place; the shared assembly is never touched.
  struct Workspace {
    std::shared_ptr<const FvAssembly> assembly;
    numeric::CsrMatrix matrix;   ///< working copy: base values + boundary films
    numeric::Vector base_rhs;    ///< sources + prescribed-flux terms [W]
  };

  Workspace make_workspace(std::shared_ptr<const FvAssembly> assembly) const;
  /// Volumetric sources + prescribed boundary fluxes of this model [W].
  numeric::Vector build_base_rhs() const;
  /// Rewrite boundary film conductances (linearized at `temps`) into the
  /// workspace matrix and produce the full right-hand side. `prev` supplies
  /// the previous time-step field for the transient capacity source term.
  void update_boundary_terms(Workspace& ws, const numeric::Vector& temps,
                             const numeric::Vector* prev, numeric::Vector& rhs) const;
  /// Driven counterpart over a *steady* workspace: copies the base values,
  /// adds `capacity[c] * inv_dt` to every diagonal, rebuilds the right-hand
  /// side from power-scaled sources + the capacity source term, and applies
  /// boundary films after passing each condition through `drive` at time
  /// `t` (null drive = stored conditions, scale 1).
  void update_driven_terms(Workspace& ws, const numeric::Vector& temps,
                           const numeric::Vector& prev, const numeric::Vector& capacity,
                           double inv_dt, double t, const FvDrive* drive,
                           numeric::Vector& rhs) const;
  FvSolution solve_steady_impl(const FvOptions& opts,
                               std::shared_ptr<const FvAssembly> assembly) const;
  double face_conductance_x(std::size_t i0, std::size_t i1, std::size_t j, std::size_t k,
                            FaceConductanceScheme scheme) const;
  double face_conductance_y(std::size_t j0, std::size_t j1, std::size_t i, std::size_t k,
                            FaceConductanceScheme scheme) const;
  double face_conductance_z(std::size_t k0, std::size_t k1, std::size_t i, std::size_t j,
                            FaceConductanceScheme scheme) const;
  /// Effective boundary conductance [W/K] of a boundary cell face, given the
  /// current surface-cell temperature estimate.
  double boundary_conductance(const BoundaryCondition& bc, double area, double half_thickness,
                              double k_cell, double t_cell) const;
  double energy_residual(const numeric::Vector& temps, const FvOptions& opts) const;

  FvGrid grid_;
  numeric::Vector kx_, ky_, kz_;   // per cell [W/m K]
  numeric::Vector rho_cp_;         // per cell [J/m^3 K]
  numeric::Vector source_;         // per cell [W]
  std::array<BoundaryCondition, 6> default_bc_{};
  std::vector<std::pair<std::size_t, double>> interfaces_z_;  // (plane, R'' [K m^2/W])
  // Per-face overrides: map from (face, a, b) flattened in-plane index.
  std::array<std::vector<std::optional<BoundaryCondition>>, 6> patch_bc_{};
};

/// Reusable driven implicit-Euler stepper over a steady (inv_dt == 0,
/// possibly cache-shared) FvAssembly. This is the FV implementation of the
/// core::TransientSystem concept the unified transient engine
/// (core/transient_engine.hpp) marches: step() advances an arbitrary field
/// by an arbitrary dt — the capacity/dt term is applied per call, so the
/// step size may change between calls without any re-assembly — which is
/// exactly what step-doubling error control needs (one full step and two
/// half steps over the same structure). The stepper owns a private
/// workspace; the shared assembly is never mutated, so any number of
/// steppers may run concurrently on one cached assembly from distinct
/// ExecutionContexts.
///
/// The referenced model must outlive the stepper and stay unmodified while
/// it is in use (the workspace caches the model's source terms).
class FvTransientStepper {
 public:
  /// Build over `model`. A null `assembly` assembles the steady structure
  /// internally (structure_assemblies() == 1); a supplied one must be
  /// steady and match model.structural_hash(opts, 0.0), else
  /// std::invalid_argument — the same validation as the cached steady
  /// solve.
  explicit FvTransientStepper(const FvModel& model, const FvOptions& opts = {},
                              std::shared_ptr<const FvAssembly> assembly = nullptr);

  /// One implicit Euler step of size `dt` ending at mission time `t_next`:
  /// rewrites the diagonal with capacity/dt plus boundary films resolved
  /// through `drive` at `t_next` (null = the model's stored conditions),
  /// then solves with CG warm-started from `temps`. `temps` is advanced in
  /// place; returns the CG iteration count. Throws on non-positive dt or a
  /// failed linear solve.
  std::size_t step(numeric::Vector& temps, double t_next, double dt, const FvDrive* drive);

  /// Attach (or detach with null) the environment drive the concept-form
  /// step() resolves per call. The drive must outlive its use; it is NOT
  /// part of any cache key — drives change boundary values, never operator
  /// structure (CONTRIBUTING.md "Driver hashing rules").
  void set_drive(const FvDrive* drive) { drive_ = drive; }

  // --- core::TransientSystem concept ------------------------------------
  std::size_t state_size() const { return capacity_.size(); }
  /// Concept-form step: same as the explicit-drive overload with the drive
  /// set through set_drive() (null = the model's stored conditions).
  std::size_t step(numeric::Vector& temps, double t_next, double dt) {
    return step(temps, t_next, dt, drive_);
  }
  /// Controller error metric: serial max-norm field difference [K].
  double error_norm(const numeric::Vector& a, const numeric::Vector& b) const;

  /// 1 when the constructor assembled, 0 when a shared assembly was used.
  std::size_t structure_assemblies() const { return structure_assemblies_; }
  const std::shared_ptr<const FvAssembly>& assembly() const { return ws_.assembly; }

 private:
  const FvModel* model_;
  FvOptions opts_;
  FvModel::Workspace ws_;
  numeric::Vector capacity_;  ///< rho*cp*V per cell (no dt factor)
  numeric::Vector rhs_;
  const FvDrive* drive_ = nullptr;
  std::size_t structure_assemblies_ = 0;
};

}  // namespace aeropack::thermal
