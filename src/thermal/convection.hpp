// Convection and radiation film-coefficient correlations.
//
// These provide the boundary conditions for the resistive-network and
// finite-volume solvers: classical engineering correlations (Churchill-Chu,
// McAdams plates, Dittus-Boelter, mixed flat plate) evaluated on the air
// state from materials::air_at, so altitude derating is automatic.
#pragma once

#include "materials/air.hpp"

namespace aeropack::thermal {

constexpr double kStefanBoltzmann = 5.670374419e-8;  ///< [W/m^2 K^4]
constexpr double kCelsiusOffset = 273.15;

/// Rayleigh number for a surface at t_surface against fluid at t_inf with
/// characteristic length L. Air properties at the film temperature.
double rayleigh(double t_surface_k, double t_inf_k, double length,
                const materials::AirState& film);

/// Natural convection, vertical plate (Churchill & Chu, all Ra). Returns
/// film coefficient h [W/m^2 K]. `height` is the plate height.
double h_natural_vertical_plate(double t_surface_k, double t_inf_k, double height,
                                double pressure_pa = 101325.0);

/// Natural convection, horizontal plate facing up (hot side up) — McAdams.
/// `length` is area/perimeter.
double h_natural_horizontal_up(double t_surface_k, double t_inf_k, double length,
                               double pressure_pa = 101325.0);

/// Natural convection, horizontal plate facing down (hot side down).
double h_natural_horizontal_down(double t_surface_k, double t_inf_k, double length,
                                 double pressure_pa = 101325.0);

/// Natural convection around a horizontal cylinder (Churchill & Chu).
double h_natural_horizontal_cylinder(double t_surface_k, double t_inf_k, double diameter,
                                     double pressure_pa = 101325.0);

/// Forced convection over a flat plate, mixed laminar/turbulent with
/// transition at Re_x = 5e5 (average Nusselt). `velocity` [m/s], `length` [m].
double h_forced_flat_plate(double velocity, double length, double t_film_k,
                           double pressure_pa = 101325.0);

/// Forced convection in a rectangular duct (card-to-card air channel):
/// laminar Nu = 7.54 (parallel plates, constant wall T) below Re 2300,
/// Dittus-Boelter above. `hydraulic_diameter` [m].
double h_forced_duct(double velocity, double hydraulic_diameter, double t_film_k,
                     double pressure_pa = 101325.0);

/// Radiative film coefficient, linearized: h = eps sigma (Ts^2+Tinf^2)(Ts+Tinf).
double h_radiation(double t_surface_k, double t_surroundings_k, double emissivity);

/// Orientation of a convecting surface, for composite enclosure models.
enum class SurfaceOrientation { Vertical, HorizontalUp, HorizontalDown };

/// Natural-convection h for a plate in a given orientation.
double h_natural_plate(SurfaceOrientation o, double t_surface_k, double t_inf_k,
                       double characteristic_length, double pressure_pa = 101325.0);

}  // namespace aeropack::thermal
