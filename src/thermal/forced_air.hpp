// ARINC 600 forced-air cooling model and hot-spot feasibility analysis.
//
// The paper states the standard electronic-bay cooling budget: 220 kg/h of
// air per kW dissipated, and argues this global flow "cannot cope with the
// hot spot problems (up to ten times the standard air flow rate would be
// required)". This module models a card channel fed from the ARINC budget
// and computes local component temperatures, so the bench can reproduce the
// feasibility boundary quantitatively.
#pragma once

#include "materials/air.hpp"

namespace aeropack::thermal {

/// ARINC 600 style air supply for one equipment.
struct ArincAirSupply {
  double flow_per_kw = 220.0;        ///< [kg/h per kW] — the paper's standard figure
  double inlet_temperature = 313.15; ///< [K] (40 C typical bay supply)
  double pressure = 101325.0;        ///< [Pa]
  double flow_multiplier = 1.0;      ///< scale factor for "10x flow" studies

  /// Mass flow [kg/s] allocated to an equipment dissipating `power_w`.
  double mass_flow(double power_w) const;
  /// Bulk air temperature rise across the equipment [K].
  double air_rise(double power_w) const;
  /// Exhaust temperature [K].
  double outlet_temperature(double power_w) const;
};

/// A card-to-card air channel in a rack (direct air flow over the module).
struct CardChannel {
  double card_width = 0.15;    ///< flow-normal card dimension [m]
  double card_length = 0.20;   ///< flow-wise dimension [m]
  double gap = 5e-3;           ///< card-to-card air gap [m]

  double flow_area() const { return card_width * gap; }
  double hydraulic_diameter() const {
    return 2.0 * card_width * gap / (card_width + gap);
  }
};

/// Result of a forced-air hot-spot analysis on one component.
struct HotSpotResult {
  double velocity = 0.0;            ///< channel air velocity [m/s]
  double h = 0.0;                   ///< film coefficient [W/m^2 K]
  double local_air_temperature = 0.0;  ///< bulk air at the component [K]
  double surface_temperature = 0.0;    ///< component surface [K]
  double film_rise = 0.0;           ///< q'' / h [K]
  bool feasible = false;            ///< surface <= limit
};

/// Compute the surface temperature of a component of heat flux
/// `flux_w_per_m2` located `position_fraction` (0..1) along the channel in a
/// module dissipating `module_power_w`, cooled by the given supply.
/// `surface_limit` is the acceptance limit [K] (paper: 85 C ambient /
/// 125 C junction; a surface limit around 100-110 C is typical).
HotSpotResult analyze_hot_spot(const ArincAirSupply& supply, const CardChannel& channel,
                               double module_power_w, double flux_w_per_m2,
                               double position_fraction, double surface_limit_k);

/// Flow multiplier required to keep the surface at `surface_limit_k`
/// (the paper's "up to ten times the standard air flow" claim).
/// Returns +inf if even 100x cannot meet the limit.
double required_flow_multiplier(const ArincAirSupply& supply, const CardChannel& channel,
                                double module_power_w, double flux_w_per_m2,
                                double position_fraction, double surface_limit_k);

/// Spreading resistance of a centered heat source of area `source_area` on a
/// square plate of area `plate_area`, thickness `t`, conductivity `k`, with
/// film coefficient `h` on the far side (Lee/Song/Au closed form, circular
/// equivalent). Returns the source-to-sink resistance including the 1-D and
/// film terms [K/W].
double spreading_resistance(double source_area, double plate_area, double thickness, double k,
                            double h);

}  // namespace aeropack::thermal
