#include "thermal/fins.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aeropack::thermal {

double fin_parameter(double h, double perimeter, double k, double cross_section) {
  if (h < 0.0 || perimeter <= 0.0 || k <= 0.0 || cross_section <= 0.0)
    throw std::invalid_argument("fin_parameter: invalid parameters");
  return std::sqrt(h * perimeter / (k * cross_section));
}

double fin_conductance(double h, double perimeter, double k, double cross_section,
                       double length) {
  if (length <= 0.0) throw std::invalid_argument("fin_conductance: length must be > 0");
  if (h == 0.0) return 0.0;
  const double m = fin_parameter(h, perimeter, k, cross_section);
  return std::sqrt(h * perimeter * k * cross_section) * std::tanh(m * length);
}

double fin_efficiency(double h, double perimeter, double k, double cross_section,
                      double length) {
  if (length <= 0.0) throw std::invalid_argument("fin_efficiency: length must be > 0");
  if (h == 0.0) return 1.0;
  const double ml = fin_parameter(h, perimeter, k, cross_section) * length;
  return std::tanh(ml) / ml;
}

double rod_sink_conductance(double h, double diameter, double k, double l1, double l2) {
  if (diameter <= 0.0) throw std::invalid_argument("rod_sink_conductance: diameter");
  const double perimeter = std::numbers::pi * diameter;
  const double area = 0.25 * std::numbers::pi * diameter * diameter;
  return fin_conductance(h, perimeter, k, area, l1) +
         fin_conductance(h, perimeter, k, area, l2);
}

}  // namespace aeropack::thermal
