#include "fem/random_vibration.hpp"

#include <cmath>
#include <stdexcept>

#include "fem/sdof.hpp"

namespace aeropack::fem {

AsdCurve::AsdCurve(std::string name, numeric::Vector freqs_hz, numeric::Vector asd_g2hz)
    : name_(std::move(name)), table_(freqs_hz, asd_g2hz), f_(std::move(freqs_hz)),
      a_(std::move(asd_g2hz)) {}

double AsdCurve::grms() const { return std::sqrt(table_.integral()); }

AsdCurve AsdCurve::scaled(double factor) const {
  if (factor <= 0.0) throw std::invalid_argument("AsdCurve::scaled: factor must be > 0");
  numeric::Vector a = a_;
  for (double& v : a) v *= factor;
  return AsdCurve(name_ + " x" + std::to_string(factor), f_, a);
}

// DO-160 Section 8 standard random curve shapes. Breakpoints per the
// published curve definitions (ASD in g^2/Hz): ramp up at low frequency,
// plateau, roll-off to 2000 Hz.
AsdCurve do160_curve_b1() {
  return AsdCurve("DO-160 B1", {10.0, 40.0, 100.0, 500.0, 2000.0},
                  {0.0005, 0.012, 0.012, 0.012, 0.00075});
}

AsdCurve do160_curve_c1() {
  return AsdCurve("DO-160 C1", {10.0, 28.0, 40.0, 250.0, 500.0, 2000.0},
                  {0.00035, 0.002, 0.002, 0.002, 0.001, 0.000062});
}

AsdCurve do160_curve_d1() {
  return AsdCurve("DO-160 D1", {10.0, 28.0, 40.0, 100.0, 500.0, 2000.0},
                  {0.0007, 0.01, 0.02, 0.04, 0.04, 0.0025});
}

AsdCurve navy_ps_spectrum(double overall_grms) {
  if (overall_grms <= 0.0) throw std::invalid_argument("navy_ps_spectrum: grms must be > 0");
  // Flat plateau 20..1000 Hz, 6 dB/oct roll-off to 2000 Hz, scaled to grms.
  AsdCurve base("flat spectrum", {20.0, 1000.0, 2000.0}, {1.0, 1.0, 0.25});
  const double g0 = base.grms();
  return base.scaled(overall_grms * overall_grms / (g0 * g0));
}

RandomVibrationResult random_response(const FrameModel& model, const AsdCurve& input,
                                      double zeta, std::size_t watch_node, Dof watch_dof,
                                      double ex_x, double ex_y, std::size_t n_modes) {
  if (zeta <= 0.0 || zeta >= 1.0)
    throw std::invalid_argument("random_response: zeta must be in (0, 1)");
  // Bound the eigensolve to the modes actually summed (plus headroom for
  // rigid-body modes skipped below) so large frames take the sparse path.
  ModalOptions mopts;
  mopts.n_modes = n_modes + 8;
  const ModalResult modes = model.solve_modal(ex_x, ex_y, mopts);
  const std::size_t watch = model.global_dof(watch_node, watch_dof);

  RandomVibrationResult out;
  double sum_sq = 0.0;
  std::size_t used = 0;
  for (std::size_t j = 0; j < modes.frequencies_hz.size() && used < n_modes; ++j) {
    const double fn = modes.frequencies_hz[j];
    if (fn < 1e-3) continue;  // skip rigid-body modes
    ++used;
    ModeRandomResponse mr;
    mr.frequency_hz = fn;
    mr.participation = modes.participation_factors[j];
    mr.asd_at_fn = (fn >= input.f_min() && fn <= input.f_max()) ? input(fn) : 0.0;
    // Absolute acceleration of the watch DOF for this mode: Miles' SDOF
    // response scaled by gamma_j * phi_j(watch).
    const double modal_grms = (mr.asd_at_fn > 0.0) ? miles_grms(fn, zeta, mr.asd_at_fn) : 0.0;
    mr.grms_contribution =
        std::fabs(mr.participation * modes.shapes(watch, j)) * modal_grms;
    sum_sq += mr.grms_contribution * mr.grms_contribution;
    out.modes.push_back(mr);
  }
  out.response_grms = std::sqrt(sum_sq);
  out.three_sigma_g = 3.0 * out.response_grms;
  return out;
}

}  // namespace aeropack::fem
