// Vibration fatigue: Steinberg's 3-sigma / three-band method for PCBs and
// component lead fatigue, plus Basquin S-N accumulation (Miner's rule). The
// paper's design goal — "identify the weaknesses of the design and margins
// regarding fatigue effects" — is computed here.
#pragma once

#include <string>

namespace aeropack::fem {

/// Steinberg's allowable 3-sigma single-amplitude PCB deflection [m] for a
/// component mounted on a board:
///   Z_allow = 0.00022 B / (C h r sqrt(L))   (inch units internally)
/// B: board edge length parallel to component [m], h: board thickness [m],
/// L: component length [m], r: relative position factor (1.0 at center),
/// C: component packaging factor (1.0 DIP, 1.26 side-brazed, 2.25 BGA...).
double steinberg_allowable_deflection(double board_edge, double thickness,
                                      double component_length, double position_factor,
                                      double packaging_factor);

/// Expected 3-sigma dynamic single-amplitude deflection [m] of a board
/// responding as an SDOF to random vibration:
///   Z_3sigma = 3 * 9.8 * grms_response / f_n^2  (metric, displacement of a
///   sinusoid at fn with 3*grms acceleration amplitude)
double steinberg_dynamic_deflection(double fn_hz, double response_grms);

/// Fatigue margin = allowable / expected (>= 1 passes for a 10-million-cycle
/// service life in Steinberg's method).
struct SteinbergAssessment {
  double allowable_deflection = 0.0;  ///< [m]
  double expected_deflection = 0.0;   ///< [m]
  double margin = 0.0;
  bool acceptable = false;
  /// Approximate time to failure scaling: Steinberg's b = 6.4 slope.
  double life_hours_at_20m_cycles = 0.0;
};

SteinbergAssessment steinberg_assess(double board_edge, double thickness,
                                     double component_length, double position_factor,
                                     double packaging_factor, double fn_hz,
                                     double response_grms);

/// Basquin high-cycle S-N: N = (S_f / S)^(1/b) with endurance cutoff.
/// `fatigue_strength_coeff` S_f [Pa], exponent b, stress amplitude S [Pa].
double basquin_cycles_to_failure(double fatigue_strength_coeff, double fatigue_exponent,
                                 double stress_amplitude);

/// Miner cumulative damage from the Steinberg three-band approach for a
/// random environment at natural frequency fn for `duration_s` seconds:
/// 1-sigma stress 68.3% of time, 2-sigma 27.1%, 3-sigma 4.33%.
double miner_damage_three_band(double fn_hz, double duration_s, double stress_1sigma,
                               double fatigue_strength_coeff, double fatigue_exponent);

}  // namespace aeropack::fem
