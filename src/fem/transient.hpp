// Time-domain structural response to base excitation — the qualification
// lab's shaker in software. Wraps the Newmark integrator around a frame
// model's reduced matrices with Rayleigh damping, for pulses (shock tests)
// and swept sines.
#pragma once

#include <functional>

#include "fem/frame.hpp"
#include "numeric/dense.hpp"

namespace aeropack::fem {

struct TransientResult {
  numeric::Vector times;
  /// Absolute acceleration at the watch DOF per step [m/s^2].
  numeric::Vector acceleration;
  /// Relative displacement at the watch DOF per step [m].
  numeric::Vector displacement;
  double peak_acceleration = 0.0;  ///< max |a| [m/s^2]
  double peak_displacement = 0.0;  ///< max |x_rel| [m]
};

/// Integrate M z'' + C z' + K z = -M r a_base(t) (relative coordinates) with
/// Newmark average acceleration; report absolute acceleration and relative
/// displacement at the watch DOF. Rayleigh damping fitted to `zeta` at
/// (f_fit_lo, f_fit_hi).
TransientResult base_excitation_transient(
    const FrameModel& model, const std::function<double(double)>& base_acceleration,
    double duration_s, double dt_s, double zeta, std::size_t watch_node, Dof watch_dof,
    double ex_x = 0.0, double ex_y = 1.0, double f_fit_lo = 20.0, double f_fit_hi = 2000.0);

}  // namespace aeropack::fem
