#include "fem/beam.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aeropack::fem {

using numeric::Matrix;

BeamSection BeamSection::rectangle(double width, double height) {
  if (width <= 0.0 || height <= 0.0)
    throw std::invalid_argument("BeamSection::rectangle: non-positive dimension");
  return {width * height, width * height * height * height / 12.0};
}

BeamSection BeamSection::tube(double outer_diameter, double wall_thickness) {
  if (outer_diameter <= 0.0 || wall_thickness <= 0.0 || 2.0 * wall_thickness >= outer_diameter)
    throw std::invalid_argument("BeamSection::tube: invalid dimensions");
  const double ro = 0.5 * outer_diameter;
  const double ri = ro - wall_thickness;
  const double pi = std::numbers::pi;
  return {pi * (ro * ro - ri * ri), 0.25 * pi * (ro * ro * ro * ro - ri * ri * ri * ri)};
}

Matrix beam_stiffness_local(double e, const BeamSection& s, double l) {
  if (e <= 0.0 || l <= 0.0 || s.area <= 0.0 || s.inertia <= 0.0)
    throw std::invalid_argument("beam_stiffness_local: invalid parameters");
  const double ea_l = e * s.area / l;
  const double ei = e * s.inertia;
  const double l2 = l * l, l3 = l2 * l;
  Matrix k(6, 6);
  k(0, 0) = ea_l;
  k(0, 3) = -ea_l;
  k(3, 0) = -ea_l;
  k(3, 3) = ea_l;
  k(1, 1) = 12.0 * ei / l3;
  k(1, 2) = 6.0 * ei / l2;
  k(1, 4) = -12.0 * ei / l3;
  k(1, 5) = 6.0 * ei / l2;
  k(2, 1) = 6.0 * ei / l2;
  k(2, 2) = 4.0 * ei / l;
  k(2, 4) = -6.0 * ei / l2;
  k(2, 5) = 2.0 * ei / l;
  k(4, 1) = -12.0 * ei / l3;
  k(4, 2) = -6.0 * ei / l2;
  k(4, 4) = 12.0 * ei / l3;
  k(4, 5) = -6.0 * ei / l2;
  k(5, 1) = 6.0 * ei / l2;
  k(5, 2) = 2.0 * ei / l;
  k(5, 4) = -6.0 * ei / l2;
  k(5, 5) = 4.0 * ei / l;
  return k;
}

Matrix beam_mass_local(double rho, const BeamSection& s, double l) {
  if (rho <= 0.0 || l <= 0.0 || s.area <= 0.0)
    throw std::invalid_argument("beam_mass_local: invalid parameters");
  const double m = rho * s.area * l;
  const double l2 = l * l;
  Matrix mm(6, 6);
  // Axial (2-node bar consistent mass).
  mm(0, 0) = m / 3.0;
  mm(0, 3) = m / 6.0;
  mm(3, 0) = m / 6.0;
  mm(3, 3) = m / 3.0;
  // Bending consistent mass.
  const double c = m / 420.0;
  mm(1, 1) = 156.0 * c;
  mm(1, 2) = 22.0 * l * c;
  mm(1, 4) = 54.0 * c;
  mm(1, 5) = -13.0 * l * c;
  mm(2, 1) = 22.0 * l * c;
  mm(2, 2) = 4.0 * l2 * c;
  mm(2, 4) = 13.0 * l * c;
  mm(2, 5) = -3.0 * l2 * c;
  mm(4, 1) = 54.0 * c;
  mm(4, 2) = 13.0 * l * c;
  mm(4, 4) = 156.0 * c;
  mm(4, 5) = -22.0 * l * c;
  mm(5, 1) = -13.0 * l * c;
  mm(5, 2) = -3.0 * l2 * c;
  mm(5, 4) = -22.0 * l * c;
  mm(5, 5) = 4.0 * l2 * c;
  return mm;
}

Matrix beam_transformation(double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  Matrix t(6, 6);
  t(0, 0) = c;
  t(0, 1) = s;
  t(1, 0) = -s;
  t(1, 1) = c;
  t(2, 2) = 1.0;
  t(3, 3) = c;
  t(3, 4) = s;
  t(4, 3) = -s;
  t(4, 4) = c;
  t(5, 5) = 1.0;
  return t;
}

}  // namespace aeropack::fem
