// Shock response spectrum (SRS) and classical pulse inputs, plus the
// quasi-static linear-acceleration check used by the paper's qualification
// campaign ("linear acceleration up to 9 g, 3 minutes in each axis").
#pragma once

#include <functional>

#include "numeric/dense.hpp"

namespace aeropack::fem {

/// Half-sine acceleration pulse a(t), peak [m/s^2], duration [s].
std::function<double(double)> half_sine_pulse(double peak, double duration);

/// Terminal sawtooth pulse.
std::function<double(double)> sawtooth_pulse(double peak, double duration);

/// Maximax absolute-acceleration shock response spectrum of a base pulse:
/// for each natural frequency, integrate the SDOF (Smallwood ramp-invariant
/// recursion) and record the peak absolute acceleration.
numeric::Vector shock_response_spectrum(const std::function<double(double)>& pulse,
                                        double pulse_duration,
                                        const numeric::Vector& frequencies_hz, double zeta);

/// Quasi-static acceleration stress check: peak stress in a uniform
/// cantilever of length L, section modulus S [m^3], carrying tip mass m
/// under `n_g` steady acceleration. Returns stress [Pa].
double quasi_static_cantilever_stress(double n_g, double tip_mass, double length,
                                      double section_modulus);

}  // namespace aeropack::fem
