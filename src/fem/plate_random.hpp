// Plate-level random-vibration assessment: run the PCB plate model's modal
// solution against an ASD curve, superpose per-mode Miles responses at a
// component location, and judge the result with Steinberg — the complete
// "will this part's solder survive the DO-160 run" answer from geometry in,
// verdict out.
#pragma once

#include "fem/fatigue.hpp"
#include "fem/plate.hpp"
#include "fem/random_vibration.hpp"

namespace aeropack::fem {

struct PlateRandomAssessment {
  double response_grms = 0.0;      ///< absolute acceleration at the component
  double dominant_frequency = 0.0; ///< mode carrying the largest share [Hz]
  SteinbergAssessment fatigue;     ///< deflection-based verdict
  std::size_t modes_used = 0;
};

/// Assess a component at (x, y) on the plate under the given base ASD.
/// `component_length` feeds Steinberg; `packaging_factor` per his tables
/// (1.0 DIP, 2.25 BGA, ...). Modes above `n_modes` or outside the curve's
/// band are ignored.
PlateRandomAssessment assess_plate_random(const PlateModel& plate, const AsdCurve& input,
                                          double zeta, double x, double y,
                                          double component_length,
                                          double packaging_factor = 1.0,
                                          std::size_t n_modes = 8);

}  // namespace aeropack::fem
