#include "fem/plate_random.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fem/sdof.hpp"

namespace aeropack::fem {

PlateRandomAssessment assess_plate_random(const PlateModel& plate, const AsdCurve& input,
                                          double zeta, double x, double y,
                                          double component_length, double packaging_factor,
                                          std::size_t n_modes) {
  if (zeta <= 0.0 || zeta >= 1.0)
    throw std::invalid_argument("assess_plate_random: zeta must be in (0, 1)");
  // Bound the eigensolve to the modes actually summed (plus headroom for
  // near-rigid modes skipped below) so fine meshes take the sparse path.
  ModalOptions mopts;
  mopts.n_modes = n_modes + 8;
  const auto modes = plate.solve_modal(mopts);
  const std::size_t node = plate.nearest_node(x, y);

  // Locate the free w DOF of the watch node.
  const std::size_t w_dof = 3 * node;
  std::ptrdiff_t watch = -1;
  for (std::size_t i = 0; i < modes.free_to_full.size(); ++i)
    if (modes.free_to_full[i] == w_dof) watch = static_cast<std::ptrdiff_t>(i);
  if (watch < 0)
    throw std::invalid_argument(
        "assess_plate_random: component sits on a supported (fixed-w) node");
  const std::size_t w = static_cast<std::size_t>(watch);

  PlateRandomAssessment out;
  double sum_sq = 0.0;
  double best_contribution = 0.0;
  std::size_t used = 0;
  for (std::size_t j = 0; j < modes.frequencies_hz.size() && used < n_modes; ++j) {
    const double fn = modes.frequencies_hz[j];
    if (fn < 1e-3) continue;
    ++used;
    if (fn < input.f_min() || fn > input.f_max()) continue;
    const double modal = miles_grms(fn, zeta, input(fn));
    const double contribution =
        std::fabs(modes.participation_factors[j] * modes.shapes(w, j)) * modal;
    sum_sq += contribution * contribution;
    if (contribution > best_contribution) {
      best_contribution = contribution;
      out.dominant_frequency = fn;
    }
  }
  out.modes_used = used;
  out.response_grms = std::sqrt(sum_sq);
  const double fn_for_deflection =
      (out.dominant_frequency > 0.0) ? out.dominant_frequency
                                     : std::max(plate.fundamental_frequency(), 1.0);
  // Position factor: Steinberg's r (1.0 at center, ~0.5 near supports);
  // approximate from the normalized mode shape is overkill here — use 1.0
  // (conservative at the center, slightly conservative elsewhere).
  out.fatigue = steinberg_assess(plate.length_x(), plate.thickness(), component_length, 1.0,
                                 packaging_factor, fn_for_deflection, out.response_grms);
  return out;
}

}  // namespace aeropack::fem
