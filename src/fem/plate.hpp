// Kirchhoff thin-plate bending FEM with the classic 12-DOF ACM rectangle
// (Adini-Clough-Melosh, non-conforming but convergent) — the workhorse for
// PCB modal placement studies (the paper's Ariane power supply is designed
// so that "its main resonant mode be located around 500 Hz").
//
// Element DOFs per corner node: (w, dw/dx, dw/dy).
#pragma once

#include <cstddef>
#include <vector>

#include "fem/dof_map.hpp"
#include "fem/modal.hpp"
#include "materials/solid.hpp"
#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::fem {

/// Flexural rigidity D = E h^3 / (12 (1 - nu^2)). [N m]
double plate_rigidity(const materials::SolidMaterial& m, double thickness);

/// 12x12 stiffness matrix of an a x b ACM rectangle with rigidity D and
/// Poisson ratio nu (origin at a corner, DOF order: node-major (w, wx, wy),
/// nodes CCW: (0,0), (a,0), (a,b), (0,b)).
numeric::Matrix acm_plate_stiffness(double a, double b, double d, double nu);

/// 12x12 consistent mass matrix; `mass_per_area` = rho * h [kg/m^2].
numeric::Matrix acm_plate_mass(double a, double b, double mass_per_area);

enum class EdgeSupport { Free, SimplySupported, Clamped };

struct PlateModalResult {
  numeric::Vector frequencies_hz;
  numeric::Matrix shapes;  ///< free-DOF shapes (column per mode)
  std::vector<std::size_t> free_to_full;
  numeric::Vector participation_factors;  ///< out-of-plane base excitation
  numeric::Vector effective_masses;
};

/// Rectangular PCB / panel meshed with nx x ny ACM elements.
class PlateModel {
 public:
  PlateModel(double length_x, double length_y, double thickness,
             const materials::SolidMaterial& material, std::size_t nx, std::size_t ny);

  /// Edge boundary conditions (default: all free).
  void set_edge(EdgeSupport support, bool x_min, bool x_max, bool y_min, bool y_max);
  /// Point support (wedge-lock / standoff): w = 0 at the node nearest (x, y).
  void add_point_support(double x, double y);
  /// Lumped component mass [kg] at the node nearest (x, y).
  void add_point_mass(double x, double y, double mass);
  /// Uniform smeared non-structural mass [kg/m^2] (components, conformal coat).
  void add_smeared_mass(double mass_per_area);
  /// Local thickness multiplier in a rectangular region (stiffener/doubler):
  /// multiplies D by factor^3 and mass by factor.
  void add_doubler(double x0, double x1, double y0, double y1, double thickness_factor);

  std::size_t node_count() const { return (nx_ + 1) * (ny_ + 1); }
  std::size_t dof_count() const { return node_count() * 3; }
  std::size_t node_index(std::size_t i, std::size_t j) const { return i + (nx_ + 1) * j; }
  /// Node nearest a physical location.
  std::size_t nearest_node(double x, double y) const;

  /// Modal analysis on the free DOFs. `opts` picks the dense/sparse
  /// eigensolver path and bounds the returned mode count (default: every
  /// mode on the dense path, lowest 16 on the sparse path).
  PlateModalResult solve_modal(const ModalOptions& opts = {}) const;

  /// Fundamental frequency [Hz].
  double fundamental_frequency() const;

  /// Constraint map from the edge supports and point supports.
  DofMap dof_map() const;
  /// Reduced (free-DOF) sparse stiffness/mass pencil.
  void reduced_sparse(numeric::CsrMatrix& k, numeric::CsrMatrix& m) const;

  /// Static deflection field under a uniform lateral pressure [Pa]
  /// (positive = +w). Returns the full-DOF displacement vector.
  numeric::Vector solve_static_pressure(double pressure) const;
  /// Peak |w| under a quasi-static `n_g` lateral acceleration acting on the
  /// plate's own (structural + smeared + point) mass. [m]
  double max_deflection_under_g(double n_g) const;

  /// Peak surface bending stress over all elements for a displacement field
  /// (from solve_static_pressure): sigma = 6 |M| / t^2 with M from the
  /// element-center curvatures. [Pa]
  double max_bending_stress(const numeric::Vector& displacements) const;

  double length_x() const { return lx_; }
  double length_y() const { return ly_; }
  double thickness() const { return thickness_; }
  /// Total mass including smeared & lumped masses. [kg]
  double total_mass() const;

 private:
  /// Scatter all plate elements and point masses into sparse assemblers.
  /// `map` == nullptr assembles full-DOF; otherwise fixed DOFs are dropped.
  void assemble_csr(const DofMap* map, numeric::CsrMatrix& k, numeric::CsrMatrix& m) const;

  double lx_, ly_, thickness_;
  materials::SolidMaterial material_;
  std::size_t nx_, ny_;
  std::vector<EdgeSupport> edge_ = std::vector<EdgeSupport>(4, EdgeSupport::Free);
  std::vector<std::size_t> point_supports_;
  std::vector<std::pair<std::size_t, double>> point_masses_;
  double smeared_mass_ = 0.0;
  struct Doubler {
    double x0, x1, y0, y1, factor;
  };
  std::vector<Doubler> doublers_;
};

/// Analytic natural frequency [Hz] of mode (m, n) of a simply-supported
/// rectangular plate — validation reference for the FEM.
double ss_plate_frequency(double a, double b, double thickness,
                          const materials::SolidMaterial& mat, int m, int n,
                          double extra_mass_per_area = 0.0);

}  // namespace aeropack::fem
