#include "fem/plate.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "numeric/assembly.hpp"
#include "numeric/eigen.hpp"
#include "numeric/quadrature.hpp"
#include "numeric/solve_dense.hpp"
#include "numeric/sparse_cholesky.hpp"

namespace aeropack::fem {

using numeric::CsrMatrix;
using numeric::Matrix;
using numeric::SparseAssembler;
using numeric::Vector;

namespace {
/// Free-DOF count at or below which static solves densify and use the
/// pivoted LU (mirrors ModalOptions::dense_threshold for the modal path).
constexpr std::size_t kDenseStaticThreshold = 360;
}  // namespace

double plate_rigidity(const materials::SolidMaterial& m, double thickness) {
  if (thickness <= 0.0) throw std::invalid_argument("plate_rigidity: thickness must be > 0");
  return m.youngs_modulus * thickness * thickness * thickness /
         (12.0 * (1.0 - m.poisson_ratio * m.poisson_ratio));
}

namespace {

// 12-term ACM polynomial basis and its derivatives at (x, y).
std::array<double, 12> basis(double x, double y) {
  return {1, x, y, x * x, x * y, y * y, x * x * x, x * x * y, x * y * y, y * y * y,
          x * x * x * y, x * y * y * y};
}
std::array<double, 12> basis_x(double x, double y) {
  return {0, 1, 0, 2 * x, y, 0, 3 * x * x, 2 * x * y, y * y, 0, 3 * x * x * y, y * y * y};
}
std::array<double, 12> basis_y(double x, double y) {
  return {0, 0, 1, 0, x, 2 * y, 0, x * x, 2 * x * y, 3 * y * y, x * x * x, 3 * x * y * y};
}
std::array<double, 12> basis_xx(double x, double y) {
  return {0, 0, 0, 2, 0, 0, 6 * x, 2 * y, 0, 0, 6 * x * y, 0};
}
std::array<double, 12> basis_yy(double x, double y) {
  return {0, 0, 0, 0, 0, 2, 0, 0, 2 * x, 6 * y, 0, 6 * x * y};
}
std::array<double, 12> basis_xy(double x, double y) {
  return {0, 0, 0, 0, 1, 0, 0, 2 * x, 2 * y, 0, 3 * x * x, 3 * y * y};
}

/// Coordinate matrix C: row triplets (w, wx, wy) at the 4 corners.
Matrix coordinate_matrix(double a, double b) {
  const double xs[4] = {0.0, a, a, 0.0};
  const double ys[4] = {0.0, 0.0, b, b};
  Matrix c(12, 12);
  for (std::size_t n = 0; n < 4; ++n) {
    const auto p = basis(xs[n], ys[n]);
    const auto px = basis_x(xs[n], ys[n]);
    const auto py = basis_y(xs[n], ys[n]);
    for (std::size_t j = 0; j < 12; ++j) {
      c(3 * n + 0, j) = p[j];
      c(3 * n + 1, j) = px[j];
      c(3 * n + 2, j) = py[j];
    }
  }
  return c;
}

}  // namespace

Matrix acm_plate_stiffness(double a, double b, double d, double nu) {
  if (a <= 0.0 || b <= 0.0 || d <= 0.0) throw std::invalid_argument("acm_plate_stiffness");
  // Bending material matrix.
  Matrix dm(3, 3);
  dm(0, 0) = d;
  dm(0, 1) = d * nu;
  dm(1, 0) = d * nu;
  dm(1, 1) = d;
  dm(2, 2) = d * (1.0 - nu) / 2.0;

  Matrix ka(12, 12);
  const auto pts = numeric::gauss_legendre(4);
  for (const auto& gx : pts)
    for (const auto& gy : pts) {
      const double x = 0.5 * a * (gx.x + 1.0);
      const double y = 0.5 * b * (gy.x + 1.0);
      const double w = gx.weight * gy.weight * 0.25 * a * b;
      const auto pxx = basis_xx(x, y);
      const auto pyy = basis_yy(x, y);
      const auto pxy = basis_xy(x, y);
      Matrix bmat(3, 12);
      for (std::size_t j = 0; j < 12; ++j) {
        bmat(0, j) = pxx[j];
        bmat(1, j) = pyy[j];
        bmat(2, j) = 2.0 * pxy[j];
      }
      const Matrix db = dm * bmat;
      for (std::size_t i = 0; i < 12; ++i)
        for (std::size_t j = 0; j < 12; ++j) {
          double acc = 0.0;
          for (std::size_t r = 0; r < 3; ++r) acc += bmat(r, i) * db(r, j);
          ka(i, j) += w * acc;
        }
    }

  const Matrix cinv = numeric::inverse(coordinate_matrix(a, b));
  Matrix k = cinv.transposed() * ka * cinv;
  k.symmetrize();
  return k;
}

Matrix acm_plate_mass(double a, double b, double mass_per_area) {
  if (a <= 0.0 || b <= 0.0 || mass_per_area <= 0.0)
    throw std::invalid_argument("acm_plate_mass");
  Matrix ma(12, 12);
  const auto pts = numeric::gauss_legendre(4);
  for (const auto& gx : pts)
    for (const auto& gy : pts) {
      const double x = 0.5 * a * (gx.x + 1.0);
      const double y = 0.5 * b * (gy.x + 1.0);
      const double w = gx.weight * gy.weight * 0.25 * a * b * mass_per_area;
      const auto p = basis(x, y);
      for (std::size_t i = 0; i < 12; ++i)
        for (std::size_t j = 0; j < 12; ++j) ma(i, j) += w * p[i] * p[j];
    }
  const Matrix cinv = numeric::inverse(coordinate_matrix(a, b));
  Matrix m = cinv.transposed() * ma * cinv;
  m.symmetrize();
  return m;
}

PlateModel::PlateModel(double length_x, double length_y, double thickness,
                       const materials::SolidMaterial& material, std::size_t nx, std::size_t ny)
    : lx_(length_x), ly_(length_y), thickness_(thickness), material_(material), nx_(nx), ny_(ny) {
  if (lx_ <= 0.0 || ly_ <= 0.0 || thickness_ <= 0.0 || nx_ == 0 || ny_ == 0)
    throw std::invalid_argument("PlateModel: invalid geometry/mesh");
}

void PlateModel::set_edge(EdgeSupport support, bool x_min, bool x_max, bool y_min, bool y_max) {
  if (x_min) edge_[0] = support;
  if (x_max) edge_[1] = support;
  if (y_min) edge_[2] = support;
  if (y_max) edge_[3] = support;
}

std::size_t PlateModel::nearest_node(double x, double y) const {
  const double fx = std::clamp(x / lx_, 0.0, 1.0) * static_cast<double>(nx_);
  const double fy = std::clamp(y / ly_, 0.0, 1.0) * static_cast<double>(ny_);
  const std::size_t i = static_cast<std::size_t>(std::lround(fx));
  const std::size_t j = static_cast<std::size_t>(std::lround(fy));
  return node_index(std::min(i, nx_), std::min(j, ny_));
}

void PlateModel::add_point_support(double x, double y) {
  point_supports_.push_back(nearest_node(x, y));
}

void PlateModel::add_point_mass(double x, double y, double mass) {
  if (mass <= 0.0) throw std::invalid_argument("add_point_mass: mass must be > 0");
  point_masses_.emplace_back(nearest_node(x, y), mass);
}

void PlateModel::add_smeared_mass(double mass_per_area) {
  if (mass_per_area < 0.0) throw std::invalid_argument("add_smeared_mass: negative");
  smeared_mass_ += mass_per_area;
}

void PlateModel::add_doubler(double x0, double x1, double y0, double y1,
                             double thickness_factor) {
  if (thickness_factor < 1.0)
    throw std::invalid_argument("add_doubler: factor must be >= 1");
  doublers_.push_back({x0, x1, y0, y1, thickness_factor});
}

double PlateModel::total_mass() const {
  double m = (material_.density * thickness_ + smeared_mass_) * lx_ * ly_;
  for (const auto& [node, mass] : point_masses_) m += mass;
  // Doubler extra mass.
  for (const auto& d : doublers_)
    m += material_.density * thickness_ * (d.factor - 1.0) *
         std::max(d.x1 - d.x0, 0.0) * std::max(d.y1 - d.y0, 0.0);
  return m;
}

void PlateModel::assemble_csr(const DofMap* map, CsrMatrix& k, CsrMatrix& m) const {
  const std::size_t n = map ? map->free_count() : dof_count();
  if (n == 0) throw std::logic_error("PlateModel: all DOFs fixed");
  SparseAssembler ka(n, n), ma(n, n);
  ka.reserve(144 * nx_ * ny_ + n);
  ma.reserve(144 * nx_ * ny_ + point_masses_.size() + n);

  const double a = lx_ / static_cast<double>(nx_);
  const double b = ly_ / static_cast<double>(ny_);
  const double d0 = plate_rigidity(material_, thickness_);
  const double mpa0 = material_.density * thickness_ + smeared_mass_;

  // The mesh is uniform, so elements share matrices whenever their doubler
  // factors coincide; cache per (stiffness factor, mass factor) pair. With
  // no doublers the whole mesh uses a single pair.
  std::map<std::pair<double, double>, std::pair<Matrix, Matrix>> cache;

  std::vector<std::size_t> dofs(12);
  for (std::size_t ej = 0; ej < ny_; ++ej)
    for (std::size_t ei = 0; ei < nx_; ++ei) {
      // Element property factors from doublers covering the element center.
      const double xc = (static_cast<double>(ei) + 0.5) * a;
      const double yc = (static_cast<double>(ej) + 0.5) * b;
      double dfac = 1.0, mfac = 1.0;
      for (const auto& dd : doublers_)
        if (xc >= dd.x0 && xc <= dd.x1 && yc >= dd.y0 && yc <= dd.y1) {
          dfac *= dd.factor * dd.factor * dd.factor;
          mfac *= dd.factor;
        }
      auto it = cache.find({dfac, mfac});
      if (it == cache.end())
        it = cache
                 .emplace(std::make_pair(dfac, mfac),
                          std::make_pair(
                              acm_plate_stiffness(a, b, d0 * dfac, material_.poisson_ratio),
                              acm_plate_mass(a, b, mpa0 * mfac)))
                 .first;
      const std::size_t nodes[4] = {node_index(ei, ej), node_index(ei + 1, ej),
                                    node_index(ei + 1, ej + 1), node_index(ei, ej + 1)};
      for (std::size_t i = 0; i < 12; ++i) dofs[i] = 3 * nodes[i / 3] + i % 3;
      if (map) dofs = map->map_dofs(dofs);
      ka.scatter(dofs, it->second.first);
      ma.scatter(dofs, it->second.second);
    }

  for (const auto& [node, mass] : point_masses_) {
    const std::size_t w = map ? map->to_free(3 * node) : 3 * node;
    if (w != DofMap::kFixed) ma.add(w, w, mass);
  }
  // Explicit structural diagonal (zero-valued; sums unchanged) so the
  // massless-DOF clamp and the skyline factorization always find it.
  for (std::size_t i = 0; i < n; ++i) {
    ka.add(i, i, 0.0);
    ma.add(i, i, 0.0);
  }
  k = ka.finalize();
  m = ma.finalize();
}

DofMap PlateModel::dof_map() const {
  DofMap map(dof_count());
  auto fix_node = [&](std::size_t node, bool w, bool wx, bool wy) {
    if (w) map.fix(3 * node + 0);
    if (wx) map.fix(3 * node + 1);
    if (wy) map.fix(3 * node + 2);
  };
  for (std::size_t j = 0; j <= ny_; ++j) {
    if (edge_[0] != EdgeSupport::Free)  // x = 0 edge: tangent direction is y
      fix_node(node_index(0, j), true, edge_[0] == EdgeSupport::Clamped, true);
    if (edge_[1] != EdgeSupport::Free)
      fix_node(node_index(nx_, j), true, edge_[1] == EdgeSupport::Clamped, true);
  }
  for (std::size_t i = 0; i <= nx_; ++i) {
    if (edge_[2] != EdgeSupport::Free)  // y = 0 edge: tangent direction is x
      fix_node(node_index(i, 0), true, true, edge_[2] == EdgeSupport::Clamped);
    if (edge_[3] != EdgeSupport::Free)
      fix_node(node_index(i, ny_), true, true, edge_[3] == EdgeSupport::Clamped);
  }
  for (std::size_t node : point_supports_) fix_node(node, true, false, false);
  if (map.free_count() == 0) throw std::logic_error("PlateModel: all DOFs fixed");
  return map;
}

void PlateModel::reduced_sparse(CsrMatrix& k, CsrMatrix& m) const {
  const DofMap map = dof_map();
  assemble_csr(&map, k, m);
}

PlateModalResult PlateModel::solve_modal(const ModalOptions& opts) const {
  const DofMap dmap = dof_map();
  CsrMatrix k, m;
  assemble_csr(&dmap, k, m);
  const ReducedModes modes = solve_reduced_modes(k, m, opts);
  const std::size_t nr = dmap.free_count();
  const std::size_t nm = modes.eigenvalues.size();

  PlateModalResult res;
  res.frequencies_hz = modes.frequencies_hz;
  res.shapes = modes.shapes;
  res.free_to_full = dmap.free_to_full();

  // Out-of-plane participation: r = 1 on every free w DOF.
  Vector r(nr, 0.0);
  for (std::size_t i = 0; i < nr; ++i)
    if (res.free_to_full[i] % 3 == 0) r[i] = 1.0;
  const Vector mr = m.multiply(r);
  res.participation_factors.resize(nm);
  res.effective_masses.resize(nm);
  for (std::size_t j = 0; j < nm; ++j) {
    double gamma = 0.0;
    for (std::size_t i = 0; i < nr; ++i) gamma += modes.shapes(i, j) * mr[i];
    res.participation_factors[j] = gamma;
    res.effective_masses[j] = gamma * gamma;
  }
  return res;
}

numeric::Vector PlateModel::solve_static_pressure(double pressure) const {
  const DofMap dmap = dof_map();
  CsrMatrix k, m;
  assemble_csr(&dmap, k, m);

  // Consistent load: lump the pressure tributary area onto the w DOFs
  // (exact for uniform meshes to the order of the element).
  Vector f(dof_count(), 0.0);
  const double a = lx_ / static_cast<double>(nx_);
  const double b = ly_ / static_cast<double>(ny_);
  for (std::size_t j = 0; j <= ny_; ++j)
    for (std::size_t i = 0; i <= nx_; ++i) {
      const double wx = (i == 0 || i == nx_) ? 0.5 : 1.0;
      const double wy = (j == 0 || j == ny_) ? 0.5 : 1.0;
      f[3 * node_index(i, j)] = pressure * a * b * wx * wy;
    }
  const Vector fr = dmap.reduce(f);

  Vector u;
  if (dmap.free_count() <= kDenseStaticThreshold) {
    u = numeric::solve(k.to_dense(), fr);
  } else {
    try {
      u = numeric::SkylineCholesky(k).solve(fr);
    } catch (const std::length_error&) {
      numeric::IterativeOptions io;
      io.tolerance = 1e-12;
      io.max_iterations = std::max<std::size_t>(10000, 20 * fr.size());
      const numeric::IterativeResult res = numeric::conjugate_gradient(k, fr, io);
      if (!res.converged)
        throw std::runtime_error("PlateModel::solve_static_pressure: CG did not converge");
      u = res.x;
    }
  }
  return dmap.expand(u);
}

double PlateModel::max_deflection_under_g(double n_g) const {
  constexpr double g = 9.80665;
  const double pressure = total_mass() / (lx_ * ly_) * std::fabs(n_g) * g;
  const Vector u = solve_static_pressure(pressure);
  double peak = 0.0;
  for (std::size_t n = 0; n < node_count(); ++n)
    peak = std::max(peak, std::fabs(u[3 * n]));
  return peak;
}

double PlateModel::max_bending_stress(const Vector& u) const {
  if (u.size() != dof_count())
    throw std::invalid_argument("max_bending_stress: displacement size mismatch");
  const double a = lx_ / static_cast<double>(nx_);
  const double b = ly_ / static_cast<double>(ny_);
  const double d0 = plate_rigidity(material_, thickness_);
  const double nu = material_.poisson_ratio;
  const Matrix cinv = numeric::inverse(coordinate_matrix(a, b));

  double worst = 0.0;
  for (std::size_t ej = 0; ej < ny_; ++ej)
    for (std::size_t ei = 0; ei < nx_; ++ei) {
      const std::size_t nodes[4] = {node_index(ei, ej), node_index(ei + 1, ej),
                                    node_index(ei + 1, ej + 1), node_index(ei, ej + 1)};
      Vector ue(12);
      for (std::size_t nloc = 0; nloc < 4; ++nloc)
        for (std::size_t d = 0; d < 3; ++d) ue[3 * nloc + d] = u[3 * nodes[nloc] + d];
      const Vector coeff = cinv * ue;  // polynomial coefficients
      // Curvatures at the element center.
      const auto pxx = basis_xx(0.5 * a, 0.5 * b);
      const auto pyy = basis_yy(0.5 * a, 0.5 * b);
      const auto pxy = basis_xy(0.5 * a, 0.5 * b);
      double kxx = 0.0, kyy = 0.0, kxy = 0.0;
      for (std::size_t t = 0; t < 12; ++t) {
        kxx += pxx[t] * coeff[t];
        kyy += pyy[t] * coeff[t];
        kxy += pxy[t] * coeff[t];
      }
      // Doubler factor on the local rigidity (matches assemble()).
      const double xc = (static_cast<double>(ei) + 0.5) * a;
      const double yc = (static_cast<double>(ej) + 0.5) * b;
      double dfac = 1.0;
      for (const auto& dd : doublers_)
        if (xc >= dd.x0 && xc <= dd.x1 && yc >= dd.y0 && yc <= dd.y1)
          dfac *= dd.factor * dd.factor * dd.factor;
      const double d_local = d0 * dfac;
      const double mx = -d_local * (kxx + nu * kyy);
      const double my = -d_local * (kyy + nu * kxx);
      const double mxy = -d_local * (1.0 - nu) * kxy;
      // Principal-moment surface stress (von-Mises-ish bound via max |M|).
      const double m_avg = 0.5 * (mx + my);
      const double m_dev = std::sqrt(0.25 * (mx - my) * (mx - my) + mxy * mxy);
      const double m_max = std::max(std::fabs(m_avg + m_dev), std::fabs(m_avg - m_dev));
      worst = std::max(worst, 6.0 * m_max / (thickness_ * thickness_));
    }
  return worst;
}

double PlateModel::fundamental_frequency() const {
  // Only the bottom of the spectrum is wanted; bound the mode count so the
  // sparse path stays a partial eigensolve on fine meshes.
  ModalOptions opts;
  opts.n_modes = 8;
  const auto res = solve_modal(opts);
  for (double f : res.frequencies_hz)
    if (f > 1e-3) return f;
  return 0.0;
}

double ss_plate_frequency(double a, double b, double thickness,
                          const materials::SolidMaterial& mat, int m, int n,
                          double extra_mass_per_area) {
  if (m < 1 || n < 1) throw std::invalid_argument("ss_plate_frequency: mode indices >= 1");
  const double d = plate_rigidity(mat, thickness);
  const double mpa = mat.density * thickness + extra_mass_per_area;
  const double pi = std::numbers::pi;
  const double term = std::pow(m / a, 2.0) + std::pow(n / b, 2.0);
  // omega = pi^2 [(m/a)^2 + (n/b)^2] sqrt(D / rho h);  f = omega / (2 pi).
  return 0.5 * pi * term * std::sqrt(d / mpa);
}

}  // namespace aeropack::fem
