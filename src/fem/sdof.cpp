#include "fem/sdof.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aeropack::fem {

double transmissibility(double f, double fn, double zeta) {
  if (f < 0.0 || fn <= 0.0 || zeta <= 0.0)
    throw std::invalid_argument("transmissibility: invalid parameters");
  const double r = f / fn;
  const double num = 1.0 + std::pow(2.0 * zeta * r, 2.0);
  const double den = std::pow(1.0 - r * r, 2.0) + std::pow(2.0 * zeta * r, 2.0);
  return std::sqrt(num / den);
}

double resonant_amplification(double zeta) {
  if (zeta <= 0.0 || zeta >= 1.0)
    throw std::invalid_argument("resonant_amplification: zeta in (0, 1)");
  return 1.0 / (2.0 * zeta * std::sqrt(1.0 - zeta * zeta));
}

double isolation_start_frequency(double fn) {
  if (fn <= 0.0) throw std::invalid_argument("isolation_start_frequency: fn must be > 0");
  return std::numbers::sqrt2 * fn;
}

double miles_grms(double fn, double zeta, double asd_at_fn) {
  if (fn <= 0.0 || zeta <= 0.0 || asd_at_fn < 0.0)
    throw std::invalid_argument("miles_grms: invalid parameters");
  const double q = 1.0 / (2.0 * zeta);
  return std::sqrt(0.5 * std::numbers::pi * fn * q * asd_at_fn);
}

double natural_frequency_hz(double stiffness, double mass) {
  if (stiffness <= 0.0 || mass <= 0.0)
    throw std::invalid_argument("natural_frequency_hz: invalid parameters");
  return std::sqrt(stiffness / mass) / (2.0 * std::numbers::pi);
}

double static_deflection(double fn_hz) {
  if (fn_hz <= 0.0) throw std::invalid_argument("static_deflection: fn must be > 0");
  constexpr double g = 9.80665;
  const double omega = 2.0 * std::numbers::pi * fn_hz;
  return g / (omega * omega);
}

}  // namespace aeropack::fem
