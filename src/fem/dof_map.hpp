// Shared node/DOF numbering and constraint handling for the FEM models.
//
// Every structural model in this module (planar frame, space frame, plate)
// used to carry its own copy of the fix/reduce/expand bookkeeping. DofMap is
// the single implementation: mark DOFs fixed, then map between full-DOF and
// free-DOF (reduced) index spaces. Fixed DOFs map to kFixed, which equals
// numeric::SparseAssembler::kDiscard so a mapped DOF list can be handed
// straight to SparseAssembler::scatter to assemble reduced matrices.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense.hpp"

namespace aeropack::fem {

class DofMap {
 public:
  /// Free-index value of a fixed DOF (== numeric::SparseAssembler::kDiscard).
  static constexpr std::size_t kFixed = static_cast<std::size_t>(-1);

  explicit DofMap(std::size_t full_dof_count);

  /// Constrain a full DOF to zero. Idempotent.
  void fix(std::size_t full_dof);
  bool is_fixed(std::size_t full_dof) const;

  std::size_t full_count() const { return fixed_.size(); }
  std::size_t free_count() const;

  /// Free index of a full DOF, or kFixed if constrained.
  std::size_t to_free(std::size_t full_dof) const;
  /// Ascending full-DOF indices of the free DOFs.
  const std::vector<std::size_t>& free_to_full() const;

  /// Map an element's full-DOF connectivity to free indices (kFixed entries
  /// mark constrained DOFs); feed the result to SparseAssembler::scatter.
  std::vector<std::size_t> map_dofs(const std::vector<std::size_t>& full_dofs) const;

  /// Gather the free entries of a full-DOF vector.
  numeric::Vector reduce(const numeric::Vector& full) const;
  /// Scatter a free-DOF vector back to full size (zeros at fixed DOFs).
  numeric::Vector expand(const numeric::Vector& reduced) const;

 private:
  void ensure_built() const;

  std::vector<bool> fixed_;
  mutable bool built_ = false;
  mutable std::vector<std::size_t> to_free_;
  mutable std::vector<std::size_t> free_to_full_;
};

}  // namespace aeropack::fem
