// Shared modal front-end for the FEM models: one entry point that takes the
// reduced (free-DOF) stiffness/mass pair in sparse form and picks between
// the dense Jacobi eigensolver (small problems; exhaustive spectrum) and the
// sparse shift-invert subspace iteration (large problems; lowest modes).
//
// All three structural models (FrameModel, Frame3D, PlateModel) route their
// modal solves through solve_reduced_modes, so the dense/sparse crossover
// and the massless-DOF handling live in exactly one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "numeric/dense.hpp"
#include "numeric/eigen.hpp"
#include "numeric/sparse.hpp"

namespace aeropack {
class ExecutionContext;
}

namespace aeropack::fem {

enum class ModalPath {
  Auto,   ///< dense at or below ModalOptions::dense_threshold free DOFs
  Dense,  ///< force the dense Jacobi path (full spectrum available)
  Sparse  ///< force shift-invert subspace iteration
};

struct ModalOptions {
  /// Number of lowest modes to return. 0 = all modes on the dense path,
  /// 16 on the sparse path (a full sparse spectrum is never wanted).
  std::size_t n_modes = 0;
  ModalPath path = ModalPath::Auto;
  /// Auto crossover: free-DOF counts at or below this use the dense solver.
  std::size_t dense_threshold = 360;
  /// Spectral shift for the sparse solver (0 targets the lowest modes).
  double shift = 0.0;
};

struct ReducedModes {
  numeric::Vector eigenvalues;     ///< ascending, length = returned modes
  numeric::Vector frequencies_hz;  ///< sqrt(lambda)/2pi, zero-clamped noise
  numeric::Matrix shapes;          ///< free-DOF shapes, M-orthonormal columns
  bool used_sparse = false;
};

/// Lowest modes of K phi = lambda M phi on the reduced (free-DOF) pencil.
/// The dense path densifies and solves the full spectrum (then truncates),
/// the sparse path runs shift-invert subspace iteration; both orderings are
/// deterministic and bit-identical across thread counts.
ReducedModes solve_reduced_modes(const numeric::CsrMatrix& k, const numeric::CsrMatrix& m,
                                 const ModalOptions& opts = {});
/// Same solve, pinned to an ExecutionContext (kernels on the context's pool,
/// telemetry in its registry; bit-identical results at any thread count).
ReducedModes solve_reduced_modes(ExecutionContext& ctx, const numeric::CsrMatrix& k,
                                 const numeric::CsrMatrix& m, const ModalOptions& opts = {});

/// The factorization half of a sparse modal solve, split out as an immutable
/// artifact for core::ArtifactCache: building it does the skyline Cholesky
/// work; re-using it makes subsequent solve_reduced_modes calls pure
/// back-substitution + subspace iteration. Shareable across threads (solve
/// paths are const) and across models whose reduced pencils match.
struct ModalFactorization {
  std::shared_ptr<const numeric::ShiftedFactorization> op;
  std::size_t rows = 0;          ///< free-DOF count the operator was built for
  /// True when the resolved shift equals the requested one (no ladder
  /// retries). Only such factorizations may enter a cache under a key that
  /// does not hash M: at sigma == shift the factored matrix is exactly
  /// K - shift*M, and at shift == 0 it is K alone.
  bool ladder_free = false;
  double shift = 0.0;            ///< the requested spectral shift

  std::size_t cost_bytes() const;
};

/// Factor the shift-invert operator of the sparse modal path for `opts`
/// (ModalPath is ignored — the factorization only exists on the sparse
/// path). Deterministic; bumps the same numeric.skyline/eigen counters the
/// direct sparse solve would.
ModalFactorization factorize_modal(const numeric::CsrMatrix& k, const numeric::CsrMatrix& m,
                                   const ModalOptions& opts = {});

/// Sparse modal solve on a pre-built factorization of exactly this (K, M,
/// opts) pencil — bit-identical to the factorizing sparse path, with zero
/// factorization work (the cache-hit half of the split). Forces the sparse
/// path regardless of opts.path/dense_threshold.
/// Throws std::invalid_argument when `cached` does not match the pencil.
ReducedModes solve_reduced_modes(const numeric::CsrMatrix& k, const numeric::CsrMatrix& m,
                                 const ModalOptions& opts, const ModalFactorization& cached);

/// Replace non-positive diagonal entries of a reduced mass matrix with
/// `epsilon` (massless DOFs, e.g. a rotation carried only by springs, would
/// otherwise make M indefinite). The diagonal must be structurally present;
/// assemblers guarantee that by scattering explicit zeros on the diagonal.
/// Throws std::logic_error if a diagonal entry is structurally missing.
void clamp_massless_diagonal(numeric::CsrMatrix& m, double epsilon = 1e-9);

}  // namespace aeropack::fem
