#include "fem/fatigue.hpp"

#include <cmath>
#include <stdexcept>

namespace aeropack::fem {

double steinberg_allowable_deflection(double board_edge, double thickness,
                                      double component_length, double position_factor,
                                      double packaging_factor) {
  if (board_edge <= 0.0 || thickness <= 0.0 || component_length <= 0.0 ||
      position_factor <= 0.0 || packaging_factor <= 0.0)
    throw std::invalid_argument("steinberg_allowable_deflection: invalid parameters");
  constexpr double m_to_in = 39.3700787;
  const double b_in = board_edge * m_to_in;
  const double h_in = thickness * m_to_in;
  const double l_in = component_length * m_to_in;
  const double z_in =
      0.00022 * b_in / (packaging_factor * h_in * position_factor * std::sqrt(l_in));
  return z_in / m_to_in;
}

double steinberg_dynamic_deflection(double fn_hz, double response_grms) {
  if (fn_hz <= 0.0 || response_grms < 0.0)
    throw std::invalid_argument("steinberg_dynamic_deflection: invalid parameters");
  constexpr double g = 9.80665;
  // Displacement amplitude of a sinusoid at fn with acceleration 3*grms*g:
  // Z = a / (2 pi fn)^2
  const double a = 3.0 * response_grms * g;
  const double w = 2.0 * 3.14159265358979323846 * fn_hz;
  return a / (w * w);
}

SteinbergAssessment steinberg_assess(double board_edge, double thickness,
                                     double component_length, double position_factor,
                                     double packaging_factor, double fn_hz,
                                     double response_grms) {
  SteinbergAssessment out;
  out.allowable_deflection = steinberg_allowable_deflection(
      board_edge, thickness, component_length, position_factor, packaging_factor);
  out.expected_deflection = steinberg_dynamic_deflection(fn_hz, response_grms);
  out.margin = (out.expected_deflection > 0.0)
                   ? out.allowable_deflection / out.expected_deflection
                   : 1e9;
  out.acceptable = out.margin >= 1.0;
  // Steinberg: allowable corresponds to 20e6 stress reversals at fn;
  // life scales as (margin)^6.4 (fatigue slope b = 6.4 for solder/lead).
  const double cycles_capable = 20e6 * std::pow(out.margin, 6.4);
  out.life_hours_at_20m_cycles = cycles_capable / fn_hz / 3600.0;
  return out;
}

double basquin_cycles_to_failure(double fatigue_strength_coeff, double fatigue_exponent,
                                 double stress_amplitude) {
  if (fatigue_strength_coeff <= 0.0 || fatigue_exponent <= 0.0 || stress_amplitude <= 0.0)
    throw std::invalid_argument("basquin_cycles_to_failure: invalid parameters");
  if (stress_amplitude >= fatigue_strength_coeff) return 1.0;
  // S = S_f (2N)^-b  =>  N = 0.5 (S / S_f)^(-1/b)
  return 0.5 * std::pow(stress_amplitude / fatigue_strength_coeff, -1.0 / fatigue_exponent);
}

double miner_damage_three_band(double fn_hz, double duration_s, double stress_1sigma,
                               double fatigue_strength_coeff, double fatigue_exponent) {
  if (fn_hz <= 0.0 || duration_s < 0.0)
    throw std::invalid_argument("miner_damage_three_band: invalid parameters");
  const double total_cycles = fn_hz * duration_s;
  const struct {
    double fraction, multiple;
  } bands[] = {{0.683, 1.0}, {0.271, 2.0}, {0.0433, 3.0}};
  double damage = 0.0;
  for (const auto& band : bands) {
    const double n = total_cycles * band.fraction;
    const double cap = basquin_cycles_to_failure(fatigue_strength_coeff, fatigue_exponent,
                                                 band.multiple * stress_1sigma);
    damage += n / cap;
  }
  return damage;
}

}  // namespace aeropack::fem
