// Single-degree-of-freedom oscillator utilities: transmissibility, Miles'
// equation, and half-sine shock response — the design formulas behind the
// paper's "mechanical filtering function and dampers" (Fig. 3) and the
// qualification load cases.
#pragma once

namespace aeropack::fem {

/// Base-excitation absolute-acceleration transmissibility |T(f)| of an
/// oscillator with natural frequency fn [Hz] and damping ratio zeta.
double transmissibility(double f, double fn, double zeta);

/// Transmissibility peak value Q = 1 / (2 zeta sqrt(1 - zeta^2)) (amplification
/// at resonance; ~1/(2 zeta) for light damping).
double resonant_amplification(double zeta);

/// Frequency above which the isolator attenuates (|T| < 1): sqrt(2) * fn.
double isolation_start_frequency(double fn);

/// Miles' equation: RMS absolute acceleration [same unit as PSD^0.5 * Hz^0.5]
/// of an SDOF at fn driven by a flat base PSD `asd` [g^2/Hz] around fn:
/// g_rms = sqrt(pi/2 * fn * Q * ASD(fn)).
double miles_grms(double fn, double zeta, double asd_at_fn);

/// Natural frequency [Hz] of a mass on a spring.
double natural_frequency_hz(double stiffness, double mass);

/// Static deflection [m] of an isolator with natural frequency fn under 1 g.
double static_deflection(double fn_hz);

}  // namespace aeropack::fem
