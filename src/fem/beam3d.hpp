// 3-D space-frame element: axial + torsion + biaxial bending, 12 DOF
// (ux, uy, uz, rx, ry, rz per node). Completes the "ANSYS substrate" for
// equipment brackets and chassis frames that bend out of plane — the Ariane
// navigation unit's mounting truss is inherently three-dimensional.
#pragma once

#include "fem/dof_map.hpp"
#include "fem/modal.hpp"
#include "materials/solid.hpp"
#include "numeric/dense.hpp"
#include "numeric/eigen.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::fem {

/// Cross-section for the space frame element.
struct Section3D {
  double area = 0.0;       ///< [m^2]
  double iy = 0.0;         ///< second moment about local y [m^4]
  double iz = 0.0;         ///< second moment about local z [m^4]
  double j = 0.0;          ///< torsion constant [m^4]

  static Section3D rectangle(double width, double height);
  static Section3D rod(double diameter);
  static Section3D tube(double outer_diameter, double wall_thickness);
};

/// Local 12x12 stiffness matrix (DOF order per node: ux uy uz rx ry rz).
numeric::Matrix beam3d_stiffness_local(const materials::SolidMaterial& m, const Section3D& s,
                                       double length);

/// Local 12x12 consistent mass matrix (rotary inertia of bending neglected,
/// torsional inertia included via the polar moment).
numeric::Matrix beam3d_mass_local(const materials::SolidMaterial& m, const Section3D& s,
                                  double length);

/// 12x12 transformation for an element from node1 to node2 with an optional
/// reference vector fixing the local-y orientation (defaults to global z,
/// or global y for near-vertical members).
numeric::Matrix beam3d_transformation(double x1, double y1, double z1, double x2, double y2,
                                      double z2);

/// Minimal 3-D frame model: nodes, beams, lumped masses, fixed DOFs.
class Frame3D {
 public:
  std::size_t add_node(double x, double y, double z);
  void add_beam(std::size_t n1, std::size_t n2, const materials::SolidMaterial& m,
                const Section3D& s);
  void add_mass(std::size_t node, double mass);
  void fix_all(std::size_t node);
  void fix(std::size_t node, std::size_t dof);  ///< dof 0..5

  std::size_t node_count() const { return coords_.size(); }
  std::size_t dof_count() const { return coords_.size() * 6; }
  std::size_t global_dof(std::size_t node, std::size_t dof) const;

  numeric::Matrix stiffness_matrix() const;
  numeric::Matrix mass_matrix() const;

  /// Static displacement under a full-DOF load vector.
  numeric::Vector solve_static(const numeric::Vector& loads) const;
  /// Natural frequencies [Hz], ascending. `opts` picks the dense/sparse
  /// eigensolver path and bounds the returned mode count.
  numeric::Vector natural_frequencies(const ModalOptions& opts = {}) const;

  /// Constraint map built from fix()/fix_all() calls.
  DofMap dof_map() const;
  /// Reduced (free-DOF) sparse stiffness/mass pencil; the mass diagonal is
  /// already guarded against massless DOFs (see fem/modal.hpp).
  void reduced_sparse(numeric::CsrMatrix& k, numeric::CsrMatrix& m) const;
  /// Peak axial+bending von-Mises-ish stress in each beam for a static
  /// solution (outer-fiber bending + axial). [Pa]
  numeric::Vector beam_stresses(const numeric::Vector& displacements) const;

 private:
  struct Coord {
    double x, y, z;
  };
  struct Beam {
    std::size_t n1, n2;
    materials::SolidMaterial mat;
    Section3D section;
  };
  /// Scatter all elements into sparse assemblers. `map` == nullptr
  /// assembles full-DOF; otherwise fixed DOFs are dropped.
  void assemble_csr(const DofMap* map, numeric::CsrMatrix& k, numeric::CsrMatrix& m) const;
  void check_node(std::size_t n) const;

  std::vector<Coord> coords_;
  std::vector<Beam> beams_;
  std::vector<std::pair<std::size_t, double>> masses_;
  std::vector<bool> fixed_;
};

}  // namespace aeropack::fem
