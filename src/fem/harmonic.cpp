#include "fem/harmonic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/solve_dense.hpp"

namespace aeropack::fem {

using numeric::Matrix;
using numeric::Vector;

void rayleigh_coefficients(double zeta, double f_lo, double f_hi, double& alpha, double& beta) {
  if (zeta <= 0.0 || f_lo <= 0.0 || f_hi <= f_lo)
    throw std::invalid_argument("rayleigh_coefficients: invalid parameters");
  const double w1 = 2.0 * std::numbers::pi * f_lo;
  const double w2 = 2.0 * std::numbers::pi * f_hi;
  alpha = 2.0 * zeta * w1 * w2 / (w1 + w2);
  beta = 2.0 * zeta / (w1 + w2);
}

HarmonicSweep harmonic_base_sweep(const FrameModel& model, const Vector& freqs_hz, double zeta,
                                  std::size_t watch_node, Dof watch_dof, double ex_x,
                                  double ex_y, double f_fit_lo, double f_fit_hi) {
  Matrix k, m;
  std::vector<std::size_t> map;
  model.reduced_system(k, m, map);
  const std::size_t n = map.size();

  double alpha = 0.0, beta = 0.0;
  rayleigh_coefficients(zeta, f_fit_lo, f_fit_hi, alpha, beta);
  Matrix c = m;
  c *= alpha;
  {
    Matrix kb = k;
    kb *= beta;
    c += kb;
  }

  // Relative-coordinate base excitation: M z'' + C z' + K z = -M r a(t).
  const Vector r_full = model.influence_vector(ex_x, ex_y);
  Vector r(n);
  for (std::size_t i = 0; i < n; ++i) r[i] = r_full[map[i]];
  const Vector mr = m * r;

  const std::size_t watch_full = model.global_dof(watch_node, watch_dof);
  std::ptrdiff_t watch = -1;
  for (std::size_t i = 0; i < n; ++i)
    if (map[i] == watch_full) watch = static_cast<std::ptrdiff_t>(i);
  if (watch < 0)
    throw std::invalid_argument("harmonic_base_sweep: watch DOF is constrained");
  const double r_watch = r[static_cast<std::size_t>(watch)];

  HarmonicSweep sweep;
  sweep.frequencies_hz = freqs_hz;
  sweep.amplitude.resize(freqs_hz.size());
  sweep.phase_rad.resize(freqs_hz.size());

  for (std::size_t fi = 0; fi < freqs_hz.size(); ++fi) {
    const double w = 2.0 * std::numbers::pi * freqs_hz[fi];
    // (K - w^2 M) + i w C, RHS = -M r (unit base acceleration amplitude).
    Matrix ar = k;
    {
      Matrix mw = m;
      mw *= w * w;
      ar -= mw;
    }
    Matrix ai = c;
    ai *= w;
    Vector br(n), bi(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) br[i] = -mr[i];
    Vector zr, zi;
    numeric::solve_complex(ar, ai, br, bi, zr, zi);
    // Absolute acceleration = base + relative: a_abs = a_base(r) + z'' where
    // z'' = -w^2 z for harmonic motion.
    const double re = r_watch - w * w * zr[static_cast<std::size_t>(watch)];
    const double im = -w * w * zi[static_cast<std::size_t>(watch)];
    sweep.amplitude[fi] = std::hypot(re, im);
    sweep.phase_rad[fi] = std::atan2(im, re);
  }
  return sweep;
}

std::vector<std::size_t> find_peaks(const HarmonicSweep& sweep, double threshold) {
  std::vector<std::size_t> peaks;
  for (std::size_t i = 1; i + 1 < sweep.amplitude.size(); ++i)
    if (sweep.amplitude[i] > sweep.amplitude[i - 1] &&
        sweep.amplitude[i] >= sweep.amplitude[i + 1] && sweep.amplitude[i] > threshold)
      peaks.push_back(i);
  return peaks;
}

}  // namespace aeropack::fem
