// Planar frame structural model: beams, lumped masses, grounded and
// inter-node springs, point constraints. Assembles dense K / M (the models
// this toolkit builds are small — equipment brackets, isolated chassis,
// card-edge supports), then exposes static, modal, harmonic and
// random-vibration analyses via the companion headers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fem/beam.hpp"
#include "fem/dof_map.hpp"
#include "fem/modal.hpp"
#include "materials/solid.hpp"
#include "numeric/dense.hpp"
#include "numeric/eigen.hpp"
#include "numeric/sparse.hpp"

namespace aeropack::fem {

enum class Dof : std::size_t { Ux = 0, Uy = 1, Rz = 2 };
constexpr std::size_t kDofPerNode = 3;

struct ModalResult {
  numeric::Vector frequencies_hz;        ///< ascending
  numeric::Matrix shapes;                ///< full-DOF mode shapes, column per mode
  numeric::Vector participation_factors; ///< base-excitation participation (given direction)
  numeric::Vector effective_masses;      ///< [kg] per mode, same direction
};

class FrameModel {
 public:
  /// Add a node at (x, y); returns its id.
  std::size_t add_node(double x, double y);
  /// Beam between two nodes. Uses the material's modulus and density.
  void add_beam(std::size_t n1, std::size_t n2, const materials::SolidMaterial& m,
                const BeamSection& s);
  /// Lumped mass [kg] (and optional rotary inertia [kg m^2]) at a node.
  void add_mass(std::size_t node, double mass, double rotary_inertia = 0.0);
  /// Grounded spring on one DOF [N/m] (or [N m/rad] for Rz).
  void add_ground_spring(std::size_t node, Dof dof, double stiffness);
  /// Spring between the same DOF of two nodes.
  void add_spring(std::size_t n1, std::size_t n2, Dof dof, double stiffness);
  /// Constrain a DOF to zero.
  void fix(std::size_t node, Dof dof);
  /// Constrain all three DOFs of a node.
  void fix_all(std::size_t node);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t dof_count() const { return nodes_.size() * kDofPerNode; }
  std::size_t free_dof_count() const;
  std::size_t global_dof(std::size_t node, Dof dof) const;

  /// Assembled full matrices (before constraint elimination). For tests.
  numeric::Matrix stiffness_matrix() const;
  numeric::Matrix mass_matrix() const;

  /// Static solve under nodal loads (full-DOF load vector); returns the
  /// full-DOF displacement vector (zeros at fixed DOFs).
  numeric::Vector solve_static(const numeric::Vector& loads) const;

  /// Modal analysis. `excitation` is the unit base-acceleration direction
  /// used for participation factors (e.g. {1, 0} = x shake). `opts` picks
  /// the dense/sparse eigensolver path and bounds the returned mode count.
  ModalResult solve_modal(double ex_x = 0.0, double ex_y = 1.0,
                          const ModalOptions& opts = {}) const;

  /// Constraint map built from fix()/fix_all() calls.
  DofMap dof_map() const;

  /// Reduced (free-DOF) matrices and the free->full index map, for the
  /// dynamics modules.
  void reduced_system(numeric::Matrix& k, numeric::Matrix& m,
                      std::vector<std::size_t>& free_to_full) const;

  /// Reduced (free-DOF) sparse stiffness/mass pencil; the mass diagonal is
  /// already guarded against massless DOFs (see fem/modal.hpp).
  void reduced_sparse(numeric::CsrMatrix& k, numeric::CsrMatrix& m) const;

  /// Rigid-body influence vector for unit base acceleration in (ax, ay):
  /// full-DOF vector with ax at every Ux, ay at every Uy.
  numeric::Vector influence_vector(double ax, double ay) const;

  /// Total translating mass (beams + lumped). [kg]
  double total_mass() const;

 private:
  struct Node {
    double x, y;
  };
  struct Beam {
    std::size_t n1, n2;
    double e, rho;
    BeamSection section;
  };
  struct PointMass {
    std::size_t node;
    double mass, inertia;
  };
  struct Spring {
    std::size_t n1;           // second node or npos for ground
    std::size_t n2;
    Dof dof;
    double k;
  };
  static constexpr std::size_t kGround = static_cast<std::size_t>(-1);

  void check_node(std::size_t n) const;
  /// Scatter all elements (beams, springs, lumped masses) into sparse
  /// assemblers. `map` == nullptr assembles in full-DOF numbering; otherwise
  /// fixed DOFs are discarded and the result is the reduced pencil.
  void assemble_csr(const DofMap* map, numeric::CsrMatrix& k, numeric::CsrMatrix& m) const;

  std::vector<Node> nodes_;
  std::vector<Beam> beams_;
  std::vector<PointMass> masses_;
  std::vector<Spring> springs_;
  std::vector<bool> fixed_;  // per global DOF
};

}  // namespace aeropack::fem
