#include "fem/transient.hpp"

#include <cmath>
#include <stdexcept>

#include "fem/harmonic.hpp"
#include "numeric/ode.hpp"

namespace aeropack::fem {

using numeric::Matrix;
using numeric::Vector;

TransientResult base_excitation_transient(
    const FrameModel& model, const std::function<double(double)>& base_acceleration,
    double duration_s, double dt_s, double zeta, std::size_t watch_node, Dof watch_dof,
    double ex_x, double ex_y, double f_fit_lo, double f_fit_hi) {
  if (duration_s <= dt_s || dt_s <= 0.0)
    throw std::invalid_argument("base_excitation_transient: bad time span");
  if (!base_acceleration)
    throw std::invalid_argument("base_excitation_transient: missing input");

  Matrix k, m;
  std::vector<std::size_t> map;
  model.reduced_system(k, m, map);
  const std::size_t n = map.size();

  double alpha = 0.0, beta = 0.0;
  rayleigh_coefficients(zeta, f_fit_lo, f_fit_hi, alpha, beta);
  Matrix c = m;
  c *= alpha;
  {
    Matrix kb = k;
    kb *= beta;
    c += kb;
  }

  const Vector r_full = model.influence_vector(ex_x, ex_y);
  Vector r(n);
  for (std::size_t i = 0; i < n; ++i) r[i] = r_full[map[i]];
  const Vector mr = m * r;

  const std::size_t watch_full = model.global_dof(watch_node, watch_dof);
  std::ptrdiff_t watch = -1;
  for (std::size_t i = 0; i < n; ++i)
    if (map[i] == watch_full) watch = static_cast<std::ptrdiff_t>(i);
  if (watch < 0)
    throw std::invalid_argument("base_excitation_transient: watch DOF is constrained");
  const std::size_t w = static_cast<std::size_t>(watch);
  const double r_watch = r[w];

  const auto force = [&](double t) {
    Vector f(n);
    const double a = base_acceleration(t);
    for (std::size_t i = 0; i < n; ++i) f[i] = -mr[i] * a;
    return f;
  };

  const std::size_t steps = static_cast<std::size_t>(std::ceil(duration_s / dt_s));
  const auto trace = numeric::newmark(m, c, k, force, Vector(n, 0.0), Vector(n, 0.0), 0.0,
                                      duration_s, steps);

  TransientResult out;
  out.times = trace.times;
  out.acceleration.reserve(trace.times.size());
  out.displacement.reserve(trace.times.size());
  for (std::size_t s = 0; s < trace.times.size(); ++s) {
    const double a_abs =
        trace.acceleration[s][w] + r_watch * base_acceleration(trace.times[s]);
    out.acceleration.push_back(a_abs);
    out.displacement.push_back(trace.displacement[s][w]);
    out.peak_acceleration = std::max(out.peak_acceleration, std::fabs(a_abs));
    out.peak_displacement =
        std::max(out.peak_displacement, std::fabs(trace.displacement[s][w]));
  }
  return out;
}

}  // namespace aeropack::fem
