// Harmonic (frequency-domain) response of assembled models: direct complex
// solves with structural (Rayleigh) or modal damping; transmissibility
// curves for isolated equipment (the paper's IRS "mechanical filtering").
#pragma once

#include <vector>

#include "fem/frame.hpp"
#include "numeric/dense.hpp"

namespace aeropack::fem {

struct HarmonicSweep {
  numeric::Vector frequencies_hz;
  numeric::Vector amplitude;  ///< response magnitude at the watch DOF
  numeric::Vector phase_rad;
};

/// Direct harmonic base-excitation sweep of a frame model: the base moves
/// with unit acceleration amplitude in direction (ex_x, ex_y) at each
/// frequency; the result is the absolute-acceleration magnitude at the watch
/// DOF (i.e. the transmissibility when the input is 1 g).
/// Damping: modal damping ratio `zeta` rendered as structural damping via
/// C = 2 zeta sqrt(K M) is expensive; we use Rayleigh damping fitted at
/// f_fit_lo / f_fit_hi to give `zeta` at both anchors.
HarmonicSweep harmonic_base_sweep(const FrameModel& model, const numeric::Vector& freqs_hz,
                                  double zeta, std::size_t watch_node, Dof watch_dof,
                                  double ex_x = 0.0, double ex_y = 1.0,
                                  double f_fit_lo = 20.0, double f_fit_hi = 2000.0);

/// Rayleigh coefficients (alpha M + beta K) giving damping ratio zeta at two
/// frequencies [Hz].
void rayleigh_coefficients(double zeta, double f_lo, double f_hi, double& alpha, double& beta);

/// Locate resonance peaks (local maxima above `threshold`) in a sweep.
std::vector<std::size_t> find_peaks(const HarmonicSweep& sweep, double threshold = 1.0);

}  // namespace aeropack::fem
