// 2-D Euler-Bernoulli frame element: axial + bending, 3 DOF per node
// (ux, uy, theta). Local stiffness and consistent mass matrices plus the
// rotation to global coordinates.
#pragma once

#include "numeric/dense.hpp"

namespace aeropack::fem {

struct BeamSection {
  double area = 0.0;     ///< [m^2]
  double inertia = 0.0;  ///< second moment about the bending axis [m^4]

  /// Rectangular cross-section helper.
  static BeamSection rectangle(double width, double height);
  /// Thin-wall circular tube.
  static BeamSection tube(double outer_diameter, double wall_thickness);
};

/// Local 6x6 stiffness matrix (DOFs: u1, v1, t1, u2, v2, t2).
numeric::Matrix beam_stiffness_local(double e_modulus, const BeamSection& s, double length);

/// Local 6x6 consistent mass matrix.
numeric::Matrix beam_mass_local(double density, const BeamSection& s, double length);

/// 6x6 transformation matrix from global to local for an element at `angle`
/// radians from the global x-axis. K_global = T^T K_local T.
numeric::Matrix beam_transformation(double angle);

}  // namespace aeropack::fem
