#include "fem/shock.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aeropack::fem {

std::function<double(double)> half_sine_pulse(double peak, double duration) {
  if (duration <= 0.0) throw std::invalid_argument("half_sine_pulse: duration must be > 0");
  return [peak, duration](double t) {
    if (t < 0.0 || t > duration) return 0.0;
    return peak * std::sin(std::numbers::pi * t / duration);
  };
}

std::function<double(double)> sawtooth_pulse(double peak, double duration) {
  if (duration <= 0.0) throw std::invalid_argument("sawtooth_pulse: duration must be > 0");
  return [peak, duration](double t) {
    if (t < 0.0 || t > duration) return 0.0;
    return peak * t / duration;
  };
}

numeric::Vector shock_response_spectrum(const std::function<double(double)>& pulse,
                                        double pulse_duration,
                                        const numeric::Vector& frequencies_hz, double zeta) {
  if (zeta <= 0.0 || zeta >= 1.0)
    throw std::invalid_argument("shock_response_spectrum: zeta in (0, 1)");
  numeric::Vector srs(frequencies_hz.size(), 0.0);
  for (std::size_t fi = 0; fi < frequencies_hz.size(); ++fi) {
    const double fn = frequencies_hz[fi];
    if (fn <= 0.0) throw std::invalid_argument("shock_response_spectrum: fn must be > 0");
    const double wn = 2.0 * std::numbers::pi * fn;
    // Time step: resolve both the oscillator and the pulse.
    const double dt = std::min(1.0 / (20.0 * fn), pulse_duration / 50.0);
    const double t_end = pulse_duration + 5.0 / (zeta * wn);  // let ringdown decay

    // Ramp-invariant integration: exact SDOF state transition over each step
    // assuming piecewise-linear base acceleration, in relative coordinates.
    const double wd = wn * std::sqrt(1.0 - zeta * zeta);
    const double e = std::exp(-zeta * wn * dt);
    const double s = std::sin(wd * dt);
    const double c = std::cos(wd * dt);
    const double k = zeta * wn;
    const double twoz = 2.0 * zeta;
    double z = 0.0, v = 0.0;  // relative displacement / velocity
    double peak = 0.0;
    double a_prev = pulse(0.0);
    const std::size_t steps = static_cast<std::size_t>(std::ceil(t_end / dt));
    for (std::size_t step = 1; step <= steps; ++step) {
      const double t = dt * static_cast<double>(step);
      const double a_now = (t <= pulse_duration) ? pulse(t) : 0.0;
      // Exact solution over [t-dt, t] with linear forcing f(t) = -(a_prev + slope*tau).
      const double slope = (a_now - a_prev) / dt;
      // Particular solution of z'' + 2 zeta wn z' + wn^2 z = -(a_prev + slope tau):
      // z_p(tau) = -(a_prev + slope tau)/wn^2 + 2 zeta slope / wn^3
      const double wn2 = wn * wn;
      const double zp0 = -a_prev / wn2 + twoz * slope / (wn2 * wn);
      const double vp0 = -slope / wn2;
      // Homogeneous initial conditions to match state at tau=0.
      const double ch = z - zp0;
      const double dh = (v - vp0 + k * ch) / wd;
      const double zp1 = -(a_prev + slope * dt) / wn2 + twoz * slope / (wn2 * wn);
      const double vp1 = -slope / wn2;
      z = e * (ch * c + dh * s) + zp1;
      v = e * (-k * (ch * c + dh * s) + wd * (-ch * s + dh * c)) + vp1;
      const double a_abs = -(twoz * wn * v + wn2 * z);  // = z'' + a_base
      peak = std::max(peak, std::fabs(a_abs));
      a_prev = a_now;
    }
    srs[fi] = peak;
  }
  return srs;
}

double quasi_static_cantilever_stress(double n_g, double tip_mass, double length,
                                      double section_modulus) {
  if (tip_mass <= 0.0 || length <= 0.0 || section_modulus <= 0.0)
    throw std::invalid_argument("quasi_static_cantilever_stress: invalid parameters");
  constexpr double g = 9.80665;
  const double moment = tip_mass * std::fabs(n_g) * g * length;
  return moment / section_modulus;
}

}  // namespace aeropack::fem
