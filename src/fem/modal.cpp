#include "fem/modal.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/context.hpp"
#include "numeric/eigen.hpp"
#include "obs/registry.hpp"

namespace aeropack::fem {

using numeric::CsrMatrix;
using numeric::Matrix;
using numeric::Vector;

void clamp_massless_diagonal(CsrMatrix& m, double epsilon) {
  const std::size_t n = std::min(m.rows(), m.cols());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cols = m.col_idx();
    std::size_t lo = m.row_ptr()[i];
    const std::size_t hi = m.row_ptr()[i + 1];
    while (lo < hi && cols[lo] < i) ++lo;
    if (lo == hi || cols[lo] != i)
      throw std::logic_error(
          "clamp_massless_diagonal: structural diagonal entry missing "
          "(assemble an explicit zero on every free diagonal)");
    if (m.values()[lo] <= 0.0) m.values()[lo] = epsilon;
  }
}

ReducedModes solve_reduced_modes(const CsrMatrix& k, const CsrMatrix& m,
                                 const ModalOptions& opts) {
  if (k.rows() != k.cols() || m.rows() != m.cols() || k.rows() != m.rows())
    throw std::invalid_argument("solve_reduced_modes: shape mismatch");
  const std::size_t n = k.rows();
  if (n == 0) throw std::invalid_argument("solve_reduced_modes: empty system");

  bool dense = true;
  switch (opts.path) {
    case ModalPath::Dense: dense = true; break;
    case ModalPath::Sparse: dense = false; break;
    case ModalPath::Auto: dense = n <= opts.dense_threshold; break;
  }

  static thread_local obs::CounterHandle modal_solves{"fem.modal_solves"};
  static thread_local obs::CounterHandle dense_solves{"fem.modal_dense"};
  static thread_local obs::CounterHandle sparse_solves{"fem.modal_sparse"};
  modal_solves.add();
  (dense ? dense_solves : sparse_solves).add();
  if (obs::enabled())
    obs::current().gauge("fem.free_dofs").set(static_cast<double>(n));
  obs::ScopedTimer span(dense ? "fem.modal_dense" : "fem.modal_sparse");

  ReducedModes res;
  if (dense) {
    const numeric::EigenResult eig = numeric::eigen_generalized(k.to_dense(), m.to_dense());
    const std::size_t nm = (opts.n_modes == 0) ? n : std::min(opts.n_modes, n);
    res.eigenvalues.assign(eig.eigenvalues.begin(),
                           eig.eigenvalues.begin() + static_cast<std::ptrdiff_t>(nm));
    if (nm == n) {
      res.shapes = eig.eigenvectors;
    } else {
      res.shapes = Matrix(n, nm);
      for (std::size_t j = 0; j < nm; ++j)
        for (std::size_t i = 0; i < n; ++i) res.shapes(i, j) = eig.eigenvectors(i, j);
    }
  } else {
    const std::size_t nm =
        (opts.n_modes == 0) ? std::min<std::size_t>(16, n) : std::min(opts.n_modes, n);
    numeric::SparseEigenOptions seo;
    seo.shift = opts.shift;
    const numeric::EigenResult eig = numeric::eigen_generalized_sparse(k, m, nm, seo);
    res.eigenvalues = eig.eigenvalues;
    res.shapes = eig.eigenvectors;
    res.used_sparse = true;
  }
  res.frequencies_hz = numeric::natural_frequencies_hz(res.eigenvalues);
  return res;
}

ReducedModes solve_reduced_modes(ExecutionContext& ctx, const CsrMatrix& k,
                                 const CsrMatrix& m, const ModalOptions& opts) {
  const ExecutionContext::Use use(ctx);
  return solve_reduced_modes(k, m, opts);
}

std::size_t ModalFactorization::cost_bytes() const {
  return sizeof(ModalFactorization) + (op ? op->cost_bytes() : 0);
}

namespace {

numeric::SparseEigenOptions sparse_options(const ModalOptions& opts) {
  numeric::SparseEigenOptions seo;
  seo.shift = opts.shift;
  return seo;
}

void check_modal_pencil(const CsrMatrix& k, const CsrMatrix& m) {
  if (k.rows() != k.cols() || m.rows() != m.cols() || k.rows() != m.rows())
    throw std::invalid_argument("factorize_modal: shape mismatch");
  if (k.rows() == 0) throw std::invalid_argument("factorize_modal: empty system");
}

}  // namespace

ModalFactorization factorize_modal(const CsrMatrix& k, const CsrMatrix& m,
                                   const ModalOptions& opts) {
  check_modal_pencil(k, m);
  static thread_local obs::CounterHandle factorizations{"fem.modal_factorizations"};
  factorizations.add();
  ModalFactorization f;
  f.rows = k.rows();
  f.shift = opts.shift;
  numeric::ShiftedFactorization op = numeric::factorize_shift_invert(k, m, sparse_options(opts));
  f.ladder_free = op.sigma == opts.shift;
  f.op = std::make_shared<const numeric::ShiftedFactorization>(std::move(op));
  return f;
}

ReducedModes solve_reduced_modes(const CsrMatrix& k, const CsrMatrix& m,
                                 const ModalOptions& opts, const ModalFactorization& cached) {
  check_modal_pencil(k, m);
  const std::size_t n = k.rows();
  if (!cached.op || cached.rows != n)
    throw std::invalid_argument(
        "solve_reduced_modes: cached factorization does not match the pencil size");
  if (cached.shift != opts.shift)
    throw std::invalid_argument(
        "solve_reduced_modes: cached factorization was built for a different shift "
        "(bit-identity with the cold path would not hold)");

  static thread_local obs::CounterHandle modal_solves{"fem.modal_solves"};
  static thread_local obs::CounterHandle sparse_solves{"fem.modal_sparse"};
  modal_solves.add();
  sparse_solves.add();
  if (obs::enabled())
    obs::current().gauge("fem.free_dofs").set(static_cast<double>(n));
  obs::ScopedTimer span("fem.modal_sparse");

  ReducedModes res;
  const std::size_t nm =
      (opts.n_modes == 0) ? std::min<std::size_t>(16, n) : std::min(opts.n_modes, n);
  const numeric::EigenResult eig =
      numeric::eigen_generalized_sparse(k, m, nm, sparse_options(opts), *cached.op);
  res.eigenvalues = eig.eigenvalues;
  res.shapes = eig.eigenvectors;
  res.used_sparse = true;
  res.frequencies_hz = numeric::natural_frequencies_hz(res.eigenvalues);
  return res;
}

}  // namespace aeropack::fem
