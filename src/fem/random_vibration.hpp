// Random-vibration analysis: acceleration-spectral-density inputs (DO-160
// Section 8 curves among them), modal-superposition RMS response of a frame
// or plate model, and Miles'-equation estimates.
#pragma once

#include <string>
#include <vector>

#include "fem/frame.hpp"
#include "numeric/interp.hpp"

namespace aeropack::fem {

/// Acceleration spectral density curve, [g^2/Hz] vs [Hz], piecewise power-law.
class AsdCurve {
 public:
  AsdCurve(std::string name, numeric::Vector freqs_hz, numeric::Vector asd_g2hz);

  const std::string& name() const { return name_; }
  double operator()(double f_hz) const { return table_(f_hz); }
  double f_min() const { return table_.x_min(); }
  double f_max() const { return table_.x_max(); }
  /// Overall input g-RMS (square root of the curve integral).
  double grms() const;
  /// A copy scaled by `factor` in ASD (factor^0.5 in g-RMS).
  AsdCurve scaled(double factor) const;

 private:
  std::string name_;
  numeric::LogLogTable table_;
  numeric::Vector f_, a_;
};

/// RTCA DO-160 Section 8 style random vibration curves. Curve shapes follow
/// the standard's published breakpoints; the paper qualifies the COSEE seats
/// "according to DO160 Curve C1".
AsdCurve do160_curve_b1();  ///< fuselage equipment, turbojet
AsdCurve do160_curve_c1();  ///< instrument-panel / low-vibration zone
AsdCurve do160_curve_d1();  ///< more severe zone
AsdCurve navy_ps_spectrum(double overall_grms);  ///< flat 20-2000 Hz shaped plateau

/// Per-mode contribution to a random-vibration response.
struct ModeRandomResponse {
  double frequency_hz = 0.0;
  double participation = 0.0;
  double asd_at_fn = 0.0;        ///< input ASD at the mode [g^2/Hz]
  double grms_contribution = 0.0;  ///< Miles per-mode response at the watch DOF
};

struct RandomVibrationResult {
  double response_grms = 0.0;     ///< RSS of modal contributions at the watch DOF
  double three_sigma_g = 0.0;     ///< 3 x grms
  std::vector<ModeRandomResponse> modes;
};

/// Modal-superposition random response of a frame model under base
/// excitation in direction (ex_x, ex_y), watched at a given DOF.
/// Uses per-mode Miles responses scaled by the mode shape at the watch DOF
/// (lightly damped, well-separated modes assumption), combined RSS.
RandomVibrationResult random_response(const FrameModel& model, const AsdCurve& input,
                                      double zeta, std::size_t watch_node, Dof watch_dof,
                                      double ex_x = 0.0, double ex_y = 1.0,
                                      std::size_t n_modes = 10);

}  // namespace aeropack::fem
