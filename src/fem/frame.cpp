#include "fem/frame.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/assembly.hpp"
#include "numeric/solve_dense.hpp"

namespace aeropack::fem {

using numeric::CsrMatrix;
using numeric::Matrix;
using numeric::SparseAssembler;
using numeric::Vector;

std::size_t FrameModel::add_node(double x, double y) {
  nodes_.push_back({x, y});
  fixed_.resize(nodes_.size() * kDofPerNode, false);
  return nodes_.size() - 1;
}

void FrameModel::check_node(std::size_t n) const {
  if (n >= nodes_.size()) throw std::out_of_range("FrameModel: bad node id");
}

void FrameModel::add_beam(std::size_t n1, std::size_t n2, const materials::SolidMaterial& m,
                          const BeamSection& s) {
  check_node(n1);
  check_node(n2);
  if (n1 == n2) throw std::invalid_argument("add_beam: zero-length beam");
  beams_.push_back({n1, n2, m.youngs_modulus, m.density, s});
}

void FrameModel::add_mass(std::size_t node, double mass, double rotary_inertia) {
  check_node(node);
  if (mass < 0.0 || rotary_inertia < 0.0) throw std::invalid_argument("add_mass: negative");
  masses_.push_back({node, mass, rotary_inertia});
}

void FrameModel::add_ground_spring(std::size_t node, Dof dof, double stiffness) {
  check_node(node);
  if (stiffness <= 0.0) throw std::invalid_argument("add_ground_spring: stiffness must be > 0");
  springs_.push_back({node, kGround, dof, stiffness});
}

void FrameModel::add_spring(std::size_t n1, std::size_t n2, Dof dof, double stiffness) {
  check_node(n1);
  check_node(n2);
  if (n1 == n2) throw std::invalid_argument("add_spring: same node");
  if (stiffness <= 0.0) throw std::invalid_argument("add_spring: stiffness must be > 0");
  springs_.push_back({n1, n2, dof, stiffness});
}

void FrameModel::fix(std::size_t node, Dof dof) {
  check_node(node);
  fixed_[global_dof(node, dof)] = true;
}

void FrameModel::fix_all(std::size_t node) {
  fix(node, Dof::Ux);
  fix(node, Dof::Uy);
  fix(node, Dof::Rz);
}

std::size_t FrameModel::global_dof(std::size_t node, Dof dof) const {
  check_node(node);
  return node * kDofPerNode + static_cast<std::size_t>(dof);
}

std::size_t FrameModel::free_dof_count() const {
  std::size_t n = 0;
  for (bool f : fixed_)
    if (!f) ++n;
  return n;
}

DofMap FrameModel::dof_map() const {
  if (dof_count() == 0) throw std::logic_error("FrameModel: empty model");
  DofMap map(dof_count());
  for (std::size_t i = 0; i < fixed_.size(); ++i)
    if (fixed_[i]) map.fix(i);
  if (map.free_count() == 0) throw std::logic_error("FrameModel: all DOFs fixed");
  return map;
}

void FrameModel::assemble_csr(const DofMap* map, CsrMatrix& k, CsrMatrix& m) const {
  const std::size_t n = map ? map->free_count() : dof_count();
  if (dof_count() == 0) throw std::logic_error("FrameModel: empty model");
  if (n == 0) throw std::logic_error("FrameModel: all DOFs fixed");
  SparseAssembler ka(n, n), ma(n, n);
  ka.reserve(36 * beams_.size() + 4 * springs_.size() + n);
  ma.reserve(36 * beams_.size() + 3 * masses_.size() + n);

  std::vector<std::size_t> dofs(6);
  for (const Beam& b : beams_) {
    const double dx = nodes_[b.n2].x - nodes_[b.n1].x;
    const double dy = nodes_[b.n2].y - nodes_[b.n1].y;
    const double l = std::hypot(dx, dy);
    const double angle = std::atan2(dy, dx);
    const Matrix t = beam_transformation(angle);
    const Matrix ke = t.transposed() * beam_stiffness_local(b.e, b.section, l) * t;
    const Matrix me = t.transposed() * beam_mass_local(b.rho, b.section, l) * t;
    dofs = {global_dof(b.n1, Dof::Ux), global_dof(b.n1, Dof::Uy), global_dof(b.n1, Dof::Rz),
            global_dof(b.n2, Dof::Ux), global_dof(b.n2, Dof::Uy), global_dof(b.n2, Dof::Rz)};
    if (map) dofs = map->map_dofs(dofs);
    ka.scatter(dofs, ke);
    ma.scatter(dofs, me);
  }
  auto mapped = [&](std::size_t full) { return map ? map->to_free(full) : full; };
  for (const Spring& s : springs_) {
    const std::size_t a = mapped(global_dof(s.n1, s.dof));
    if (s.n2 == kGround) {
      if (a != DofMap::kFixed) ka.add(a, a, s.k);
    } else {
      const std::size_t b = mapped(global_dof(s.n2, s.dof));
      if (a != DofMap::kFixed) ka.add(a, a, s.k);
      if (b != DofMap::kFixed) ka.add(b, b, s.k);
      if (a != DofMap::kFixed && b != DofMap::kFixed) {
        ka.add(a, b, -s.k);
        ka.add(b, a, -s.k);
      }
    }
  }
  for (const PointMass& pm : masses_) {
    const std::size_t ux = mapped(global_dof(pm.node, Dof::Ux));
    const std::size_t uy = mapped(global_dof(pm.node, Dof::Uy));
    const std::size_t rz = mapped(global_dof(pm.node, Dof::Rz));
    if (ux != DofMap::kFixed) ma.add(ux, ux, pm.mass);
    if (uy != DofMap::kFixed) ma.add(uy, uy, pm.mass);
    if (rz != DofMap::kFixed) ma.add(rz, rz, pm.inertia);
  }
  // Explicit structural diagonal (zero-valued, so sums are unchanged): the
  // massless-DOF guard and the skyline factorization need every diagonal
  // entry present even when no element touches it.
  for (std::size_t i = 0; i < n; ++i) {
    ka.add(i, i, 0.0);
    ma.add(i, i, 0.0);
  }
  k = ka.finalize();
  m = ma.finalize();
}

Matrix FrameModel::stiffness_matrix() const {
  CsrMatrix k, m;
  assemble_csr(nullptr, k, m);
  return k.to_dense();
}

Matrix FrameModel::mass_matrix() const {
  CsrMatrix k, m;
  assemble_csr(nullptr, k, m);
  return m.to_dense();
}

void FrameModel::reduced_sparse(CsrMatrix& k, CsrMatrix& m) const {
  const DofMap map = dof_map();
  assemble_csr(&map, k, m);
  // Guard against massless DOFs (e.g. rotation of a node carried only by
  // springs): add a tiny inertia so M stays positive definite.
  clamp_massless_diagonal(m);
}

void FrameModel::reduced_system(Matrix& k, Matrix& m,
                                std::vector<std::size_t>& free_to_full) const {
  const DofMap map = dof_map();
  free_to_full = map.free_to_full();
  CsrMatrix ks, ms;
  reduced_sparse(ks, ms);
  k = ks.to_dense();
  m = ms.to_dense();
}

Vector FrameModel::solve_static(const Vector& loads) const {
  if (loads.size() != dof_count()) throw std::invalid_argument("solve_static: load size");
  Matrix k, m;
  std::vector<std::size_t> map;
  reduced_system(k, m, map);
  Vector f(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) f[i] = loads[map[i]];
  const Vector u = numeric::solve(k, f);
  Vector full(dof_count(), 0.0);
  for (std::size_t i = 0; i < map.size(); ++i) full[map[i]] = u[i];
  return full;
}

Vector FrameModel::influence_vector(double ax, double ay) const {
  Vector r(dof_count(), 0.0);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    r[global_dof(n, Dof::Ux)] = ax;
    r[global_dof(n, Dof::Uy)] = ay;
  }
  return r;
}

double FrameModel::total_mass() const {
  double m = 0.0;
  for (const Beam& b : beams_) {
    const double dx = nodes_[b.n2].x - nodes_[b.n1].x;
    const double dy = nodes_[b.n2].y - nodes_[b.n1].y;
    m += b.rho * b.section.area * std::hypot(dx, dy);
  }
  for (const PointMass& pm : masses_) m += pm.mass;
  return m;
}

ModalResult FrameModel::solve_modal(double ex_x, double ex_y, const ModalOptions& opts) const {
  const DofMap dmap = dof_map();
  CsrMatrix k, m;
  reduced_sparse(k, m);
  const ReducedModes modes = solve_reduced_modes(k, m, opts);
  const std::vector<std::size_t>& map = dmap.free_to_full();
  const std::size_t nr = map.size();
  const std::size_t nm = modes.eigenvalues.size();

  ModalResult res;
  res.frequencies_hz = modes.frequencies_hz;
  res.shapes = Matrix(dof_count(), nm);
  for (std::size_t j = 0; j < nm; ++j)
    for (std::size_t i = 0; i < nr; ++i) res.shapes(map[i], j) = modes.shapes(i, j);

  // Participation factors: gamma_j = phi_j^T M r (phi M-orthonormal).
  const Vector r = dmap.reduce(influence_vector(ex_x, ex_y));
  const Vector mr = m.multiply(r);
  res.participation_factors.resize(nm);
  res.effective_masses.resize(nm);
  for (std::size_t j = 0; j < nm; ++j) {
    double gamma = 0.0;
    for (std::size_t i = 0; i < nr; ++i) gamma += modes.shapes(i, j) * mr[i];
    res.participation_factors[j] = gamma;
    res.effective_masses[j] = gamma * gamma;  // phi M-orthonormal => m_eff = gamma^2
  }
  return res;
}

}  // namespace aeropack::fem
