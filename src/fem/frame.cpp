#include "fem/frame.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/solve_dense.hpp"

namespace aeropack::fem {

using numeric::Matrix;
using numeric::Vector;

std::size_t FrameModel::add_node(double x, double y) {
  nodes_.push_back({x, y});
  fixed_.resize(nodes_.size() * kDofPerNode, false);
  return nodes_.size() - 1;
}

void FrameModel::check_node(std::size_t n) const {
  if (n >= nodes_.size()) throw std::out_of_range("FrameModel: bad node id");
}

void FrameModel::add_beam(std::size_t n1, std::size_t n2, const materials::SolidMaterial& m,
                          const BeamSection& s) {
  check_node(n1);
  check_node(n2);
  if (n1 == n2) throw std::invalid_argument("add_beam: zero-length beam");
  beams_.push_back({n1, n2, m.youngs_modulus, m.density, s});
}

void FrameModel::add_mass(std::size_t node, double mass, double rotary_inertia) {
  check_node(node);
  if (mass < 0.0 || rotary_inertia < 0.0) throw std::invalid_argument("add_mass: negative");
  masses_.push_back({node, mass, rotary_inertia});
}

void FrameModel::add_ground_spring(std::size_t node, Dof dof, double stiffness) {
  check_node(node);
  if (stiffness <= 0.0) throw std::invalid_argument("add_ground_spring: stiffness must be > 0");
  springs_.push_back({node, kGround, dof, stiffness});
}

void FrameModel::add_spring(std::size_t n1, std::size_t n2, Dof dof, double stiffness) {
  check_node(n1);
  check_node(n2);
  if (n1 == n2) throw std::invalid_argument("add_spring: same node");
  if (stiffness <= 0.0) throw std::invalid_argument("add_spring: stiffness must be > 0");
  springs_.push_back({n1, n2, dof, stiffness});
}

void FrameModel::fix(std::size_t node, Dof dof) {
  check_node(node);
  fixed_[global_dof(node, dof)] = true;
}

void FrameModel::fix_all(std::size_t node) {
  fix(node, Dof::Ux);
  fix(node, Dof::Uy);
  fix(node, Dof::Rz);
}

std::size_t FrameModel::global_dof(std::size_t node, Dof dof) const {
  check_node(node);
  return node * kDofPerNode + static_cast<std::size_t>(dof);
}

std::size_t FrameModel::free_dof_count() const {
  std::size_t n = 0;
  for (bool f : fixed_)
    if (!f) ++n;
  return n;
}

Matrix FrameModel::stiffness_matrix() const {
  const std::size_t n = dof_count();
  if (n == 0) throw std::logic_error("FrameModel: empty model");
  Matrix k(n, n);
  for (const Beam& b : beams_) {
    const double dx = nodes_[b.n2].x - nodes_[b.n1].x;
    const double dy = nodes_[b.n2].y - nodes_[b.n1].y;
    const double l = std::hypot(dx, dy);
    const double angle = std::atan2(dy, dx);
    const Matrix t = beam_transformation(angle);
    const Matrix ke = t.transposed() * beam_stiffness_local(b.e, b.section, l) * t;
    const std::size_t map[6] = {global_dof(b.n1, Dof::Ux), global_dof(b.n1, Dof::Uy),
                                global_dof(b.n1, Dof::Rz), global_dof(b.n2, Dof::Ux),
                                global_dof(b.n2, Dof::Uy), global_dof(b.n2, Dof::Rz)};
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) k(map[i], map[j]) += ke(i, j);
  }
  for (const Spring& s : springs_) {
    const std::size_t a = global_dof(s.n1, s.dof);
    if (s.n2 == kGround) {
      k(a, a) += s.k;
    } else {
      const std::size_t b = global_dof(s.n2, s.dof);
      k(a, a) += s.k;
      k(b, b) += s.k;
      k(a, b) -= s.k;
      k(b, a) -= s.k;
    }
  }
  return k;
}

Matrix FrameModel::mass_matrix() const {
  const std::size_t n = dof_count();
  if (n == 0) throw std::logic_error("FrameModel: empty model");
  Matrix m(n, n);
  for (const Beam& b : beams_) {
    const double dx = nodes_[b.n2].x - nodes_[b.n1].x;
    const double dy = nodes_[b.n2].y - nodes_[b.n1].y;
    const double l = std::hypot(dx, dy);
    const double angle = std::atan2(dy, dx);
    const Matrix t = beam_transformation(angle);
    const Matrix me = t.transposed() * beam_mass_local(b.rho, b.section, l) * t;
    const std::size_t map[6] = {global_dof(b.n1, Dof::Ux), global_dof(b.n1, Dof::Uy),
                                global_dof(b.n1, Dof::Rz), global_dof(b.n2, Dof::Ux),
                                global_dof(b.n2, Dof::Uy), global_dof(b.n2, Dof::Rz)};
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) m(map[i], map[j]) += me(i, j);
  }
  for (const PointMass& pm : masses_) {
    m(global_dof(pm.node, Dof::Ux), global_dof(pm.node, Dof::Ux)) += pm.mass;
    m(global_dof(pm.node, Dof::Uy), global_dof(pm.node, Dof::Uy)) += pm.mass;
    m(global_dof(pm.node, Dof::Rz), global_dof(pm.node, Dof::Rz)) += pm.inertia;
  }
  return m;
}

void FrameModel::reduced_system(Matrix& k, Matrix& m,
                                std::vector<std::size_t>& free_to_full) const {
  const Matrix kf = stiffness_matrix();
  const Matrix mf = mass_matrix();
  free_to_full.clear();
  for (std::size_t i = 0; i < dof_count(); ++i)
    if (!fixed_[i]) free_to_full.push_back(i);
  const std::size_t nr = free_to_full.size();
  if (nr == 0) throw std::logic_error("FrameModel: all DOFs fixed");
  k = Matrix(nr, nr);
  m = Matrix(nr, nr);
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nr; ++j) {
      k(i, j) = kf(free_to_full[i], free_to_full[j]);
      m(i, j) = mf(free_to_full[i], free_to_full[j]);
    }
  // Guard against massless DOFs (e.g. rotation of a node carried only by
  // springs): add a tiny inertia so M stays positive definite.
  for (std::size_t i = 0; i < nr; ++i)
    if (m(i, i) <= 0.0) m(i, i) = 1e-9;
}

Vector FrameModel::solve_static(const Vector& loads) const {
  if (loads.size() != dof_count()) throw std::invalid_argument("solve_static: load size");
  Matrix k, m;
  std::vector<std::size_t> map;
  reduced_system(k, m, map);
  Vector f(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) f[i] = loads[map[i]];
  const Vector u = numeric::solve(k, f);
  Vector full(dof_count(), 0.0);
  for (std::size_t i = 0; i < map.size(); ++i) full[map[i]] = u[i];
  return full;
}

Vector FrameModel::influence_vector(double ax, double ay) const {
  Vector r(dof_count(), 0.0);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    r[global_dof(n, Dof::Ux)] = ax;
    r[global_dof(n, Dof::Uy)] = ay;
  }
  return r;
}

double FrameModel::total_mass() const {
  double m = 0.0;
  for (const Beam& b : beams_) {
    const double dx = nodes_[b.n2].x - nodes_[b.n1].x;
    const double dy = nodes_[b.n2].y - nodes_[b.n1].y;
    m += b.rho * b.section.area * std::hypot(dx, dy);
  }
  for (const PointMass& pm : masses_) m += pm.mass;
  return m;
}

ModalResult FrameModel::solve_modal(double ex_x, double ex_y) const {
  Matrix k, m;
  std::vector<std::size_t> map;
  reduced_system(k, m, map);
  const numeric::EigenResult eig = numeric::eigen_generalized(k, m);

  ModalResult res;
  res.frequencies_hz = numeric::natural_frequencies_hz(eig);
  const std::size_t nr = map.size();
  res.shapes = Matrix(dof_count(), nr);
  for (std::size_t j = 0; j < nr; ++j)
    for (std::size_t i = 0; i < nr; ++i) res.shapes(map[i], j) = eig.eigenvectors(i, j);

  // Participation factors: gamma_j = phi_j^T M r (phi M-orthonormal).
  const Vector r_full = influence_vector(ex_x, ex_y);
  Vector r(nr);
  for (std::size_t i = 0; i < nr; ++i) r[i] = r_full[map[i]];
  const Vector mr = m * r;
  res.participation_factors.resize(nr);
  res.effective_masses.resize(nr);
  for (std::size_t j = 0; j < nr; ++j) {
    double gamma = 0.0;
    for (std::size_t i = 0; i < nr; ++i) gamma += eig.eigenvectors(i, j) * mr[i];
    res.participation_factors[j] = gamma;
    res.effective_masses[j] = gamma * gamma;  // phi M-orthonormal => m_eff = gamma^2
  }
  return res;
}

}  // namespace aeropack::fem
