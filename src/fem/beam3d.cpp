#include "fem/beam3d.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/assembly.hpp"
#include "numeric/solve_dense.hpp"

namespace aeropack::fem {

using numeric::CsrMatrix;
using numeric::Matrix;
using numeric::SparseAssembler;
using numeric::Vector;

Section3D Section3D::rectangle(double width, double height) {
  if (width <= 0.0 || height <= 0.0)
    throw std::invalid_argument("Section3D::rectangle: non-positive dimension");
  Section3D s;
  s.area = width * height;
  s.iz = width * height * height * height / 12.0;  // bending in the height direction
  s.iy = height * width * width * width / 12.0;
  // Saint-Venant torsion constant for a rectangle (a >= b):
  const double a = std::max(width, height), b = std::min(width, height);
  s.j = a * b * b * b * (1.0 / 3.0 - 0.21 * (b / a) * (1.0 - std::pow(b / a, 4.0) / 12.0));
  return s;
}

Section3D Section3D::rod(double diameter) {
  if (diameter <= 0.0) throw std::invalid_argument("Section3D::rod: diameter");
  Section3D s;
  const double r = 0.5 * diameter;
  const double pi = std::numbers::pi;
  s.area = pi * r * r;
  s.iy = s.iz = 0.25 * pi * r * r * r * r;
  s.j = 0.5 * pi * r * r * r * r;
  return s;
}

Section3D Section3D::tube(double outer_diameter, double wall_thickness) {
  if (outer_diameter <= 0.0 || wall_thickness <= 0.0 ||
      2.0 * wall_thickness >= outer_diameter)
    throw std::invalid_argument("Section3D::tube: invalid dimensions");
  Section3D s;
  const double ro = 0.5 * outer_diameter, ri = ro - wall_thickness;
  const double pi = std::numbers::pi;
  s.area = pi * (ro * ro - ri * ri);
  s.iy = s.iz = 0.25 * pi * (std::pow(ro, 4.0) - std::pow(ri, 4.0));
  s.j = 2.0 * s.iy;
  return s;
}

namespace {

/// Add the 4x4 plane-bending stiffness block into k at DOFs (t1, r1, t2, r2)
/// with rotation sign `sgn` (+1 for the x-y plane / Iz, -1 for x-z / Iy).
void add_bending(Matrix& k, double ei, double l, std::size_t t1, std::size_t r1,
                 std::size_t t2, std::size_t r2, double sgn) {
  const double l2 = l * l, l3 = l2 * l;
  const double a = 12.0 * ei / l3;
  const double b = 6.0 * ei / l2 * sgn;
  const double c = 4.0 * ei / l;
  const double d = 2.0 * ei / l;
  k(t1, t1) += a;
  k(t1, r1) += b;
  k(t1, t2) += -a;
  k(t1, r2) += b;
  k(r1, t1) += b;
  k(r1, r1) += c;
  k(r1, t2) += -b;
  k(r1, r2) += d;
  k(t2, t1) += -a;
  k(t2, r1) += -b;
  k(t2, t2) += a;
  k(t2, r2) += -b;
  k(r2, t1) += b;
  k(r2, r1) += d;
  k(r2, t2) += -b;
  k(r2, r2) += c;
}

void add_bending_mass(Matrix& m, double rho_al, double l, std::size_t t1, std::size_t r1,
                      std::size_t t2, std::size_t r2, double sgn) {
  const double c = rho_al / 420.0;
  const double l2 = l * l;
  m(t1, t1) += 156.0 * c;
  m(t1, r1) += 22.0 * l * c * sgn;
  m(t1, t2) += 54.0 * c;
  m(t1, r2) += -13.0 * l * c * sgn;
  m(r1, t1) += 22.0 * l * c * sgn;
  m(r1, r1) += 4.0 * l2 * c;
  m(r1, t2) += 13.0 * l * c * sgn;
  m(r1, r2) += -3.0 * l2 * c;
  m(t2, t1) += 54.0 * c;
  m(t2, r1) += 13.0 * l * c * sgn;
  m(t2, t2) += 156.0 * c;
  m(t2, r2) += -22.0 * l * c * sgn;
  m(r2, t1) += -13.0 * l * c * sgn;
  m(r2, r1) += -3.0 * l2 * c;
  m(r2, t2) += -22.0 * l * c * sgn;
  m(r2, r2) += 4.0 * l2 * c;
}

}  // namespace

Matrix beam3d_stiffness_local(const materials::SolidMaterial& mat, const Section3D& s,
                              double l) {
  if (l <= 0.0 || s.area <= 0.0 || s.iy <= 0.0 || s.iz <= 0.0 || s.j <= 0.0)
    throw std::invalid_argument("beam3d_stiffness_local: invalid parameters");
  const double e = mat.youngs_modulus;
  const double g = e / (2.0 * (1.0 + mat.poisson_ratio));
  Matrix k(12, 12);
  // Axial (ux: DOFs 0, 6).
  const double ea_l = e * s.area / l;
  k(0, 0) += ea_l;
  k(0, 6) += -ea_l;
  k(6, 0) += -ea_l;
  k(6, 6) += ea_l;
  // Torsion (rx: DOFs 3, 9).
  const double gj_l = g * s.j / l;
  k(3, 3) += gj_l;
  k(3, 9) += -gj_l;
  k(9, 3) += -gj_l;
  k(9, 9) += gj_l;
  // Bending in the x-y plane (uy, rz): Iz, DOFs 1, 5, 7, 11, sign +1.
  add_bending(k, e * s.iz, l, 1, 5, 7, 11, +1.0);
  // Bending in the x-z plane (uz, ry): Iy, DOFs 2, 4, 8, 10, sign -1.
  add_bending(k, e * s.iy, l, 2, 4, 8, 10, -1.0);
  return k;
}

Matrix beam3d_mass_local(const materials::SolidMaterial& mat, const Section3D& s, double l) {
  if (l <= 0.0) throw std::invalid_argument("beam3d_mass_local: invalid length");
  const double rho_al = mat.density * s.area * l;
  Matrix m(12, 12);
  // Axial.
  m(0, 0) += rho_al / 3.0;
  m(0, 6) += rho_al / 6.0;
  m(6, 0) += rho_al / 6.0;
  m(6, 6) += rho_al / 3.0;
  // Torsion (rotary inertia per length rho*J).
  const double it = mat.density * s.j * l;
  m(3, 3) += it / 3.0;
  m(3, 9) += it / 6.0;
  m(9, 3) += it / 6.0;
  m(9, 9) += it / 3.0;
  add_bending_mass(m, rho_al, l, 1, 5, 7, 11, +1.0);
  add_bending_mass(m, rho_al, l, 2, 4, 8, 10, -1.0);
  return m;
}

Matrix beam3d_transformation(double x1, double y1, double z1, double x2, double y2,
                             double z2) {
  const double dx = x2 - x1, dy = y2 - y1, dz = z2 - z1;
  const double l = std::sqrt(dx * dx + dy * dy + dz * dz);
  if (l <= 0.0) throw std::invalid_argument("beam3d_transformation: zero-length element");
  const double ex[3] = {dx / l, dy / l, dz / l};
  // Reference vector: global Z unless the member is near-vertical.
  double ref[3] = {0.0, 0.0, 1.0};
  if (std::fabs(ex[2]) > 0.999) {
    ref[0] = 0.0;
    ref[1] = 1.0;
    ref[2] = 0.0;
  }
  // ey = ref x ex, normalized; ez = ex x ey.
  double ey[3] = {ref[1] * ex[2] - ref[2] * ex[1], ref[2] * ex[0] - ref[0] * ex[2],
                  ref[0] * ex[1] - ref[1] * ex[0]};
  const double ny = std::sqrt(ey[0] * ey[0] + ey[1] * ey[1] + ey[2] * ey[2]);
  for (double& v : ey) v /= ny;
  const double ez[3] = {ex[1] * ey[2] - ex[2] * ey[1], ex[2] * ey[0] - ex[0] * ey[2],
                        ex[0] * ey[1] - ex[1] * ey[0]};

  Matrix t(12, 12);
  const double lambda[3][3] = {{ex[0], ex[1], ex[2]},
                               {ey[0], ey[1], ey[2]},
                               {ez[0], ez[1], ez[2]}};
  for (std::size_t blk = 0; blk < 4; ++blk)
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) t(3 * blk + i, 3 * blk + j) = lambda[i][j];
  return t;
}

// --- Frame3D ------------------------------------------------------------------

std::size_t Frame3D::add_node(double x, double y, double z) {
  coords_.push_back({x, y, z});
  fixed_.resize(coords_.size() * 6, false);
  return coords_.size() - 1;
}

void Frame3D::check_node(std::size_t n) const {
  if (n >= coords_.size()) throw std::out_of_range("Frame3D: bad node id");
}

void Frame3D::add_beam(std::size_t n1, std::size_t n2, const materials::SolidMaterial& m,
                       const Section3D& s) {
  check_node(n1);
  check_node(n2);
  if (n1 == n2) throw std::invalid_argument("Frame3D::add_beam: zero-length beam");
  beams_.push_back({n1, n2, m, s});
}

void Frame3D::add_mass(std::size_t node, double mass) {
  check_node(node);
  if (mass <= 0.0) throw std::invalid_argument("Frame3D::add_mass: mass must be > 0");
  masses_.emplace_back(node, mass);
}

void Frame3D::fix_all(std::size_t node) {
  check_node(node);
  for (std::size_t d = 0; d < 6; ++d) fixed_[node * 6 + d] = true;
}

void Frame3D::fix(std::size_t node, std::size_t dof) {
  check_node(node);
  if (dof >= 6) throw std::invalid_argument("Frame3D::fix: dof must be 0..5");
  fixed_[node * 6 + dof] = true;
}

std::size_t Frame3D::global_dof(std::size_t node, std::size_t dof) const {
  check_node(node);
  return node * 6 + dof;
}

void Frame3D::assemble_csr(const DofMap* map, CsrMatrix& k, CsrMatrix& m) const {
  if (dof_count() == 0) throw std::logic_error("Frame3D: empty model");
  const std::size_t n = map ? map->free_count() : dof_count();
  if (n == 0) throw std::logic_error("Frame3D: all DOFs fixed");
  SparseAssembler ka(n, n), ma(n, n);
  ka.reserve(144 * beams_.size() + n);
  ma.reserve(144 * beams_.size() + 3 * masses_.size() + n);

  std::vector<std::size_t> dofs(12);
  for (const Beam& b : beams_) {
    const Coord& p1 = coords_[b.n1];
    const Coord& p2 = coords_[b.n2];
    const double l = std::sqrt(std::pow(p2.x - p1.x, 2.0) + std::pow(p2.y - p1.y, 2.0) +
                               std::pow(p2.z - p1.z, 2.0));
    const Matrix t = beam3d_transformation(p1.x, p1.y, p1.z, p2.x, p2.y, p2.z);
    const Matrix ke = t.transposed() * beam3d_stiffness_local(b.mat, b.section, l) * t;
    const Matrix me = t.transposed() * beam3d_mass_local(b.mat, b.section, l) * t;
    for (std::size_t d = 0; d < 6; ++d) {
      dofs[d] = b.n1 * 6 + d;
      dofs[6 + d] = b.n2 * 6 + d;
    }
    if (map) dofs = map->map_dofs(dofs);
    ka.scatter(dofs, ke);
    ma.scatter(dofs, me);
  }
  for (const auto& [node, mass] : masses_)
    for (std::size_t d = 0; d < 3; ++d) {
      const std::size_t g = map ? map->to_free(node * 6 + d) : node * 6 + d;
      if (g != DofMap::kFixed) ma.add(g, g, mass);
    }
  // Explicit structural diagonal (zero-valued; sums unchanged) so the
  // massless-DOF clamp and the skyline factorization always find it.
  for (std::size_t i = 0; i < n; ++i) {
    ka.add(i, i, 0.0);
    ma.add(i, i, 0.0);
  }
  k = ka.finalize();
  m = ma.finalize();
}

DofMap Frame3D::dof_map() const {
  if (dof_count() == 0) throw std::logic_error("Frame3D: empty model");
  DofMap map(dof_count());
  for (std::size_t i = 0; i < fixed_.size(); ++i)
    if (fixed_[i]) map.fix(i);
  if (map.free_count() == 0) throw std::logic_error("Frame3D: all DOFs fixed");
  return map;
}

void Frame3D::reduced_sparse(CsrMatrix& k, CsrMatrix& m) const {
  const DofMap map = dof_map();
  assemble_csr(&map, k, m);
  // Guard against massless DOFs (rotations of a lumped-mass-only node):
  // a tiny inertia keeps M positive definite.
  clamp_massless_diagonal(m);
}

Matrix Frame3D::stiffness_matrix() const {
  CsrMatrix k, m;
  assemble_csr(nullptr, k, m);
  return k.to_dense();
}

Matrix Frame3D::mass_matrix() const {
  CsrMatrix k, m;
  assemble_csr(nullptr, k, m);
  return m.to_dense();
}

Vector Frame3D::solve_static(const Vector& loads) const {
  if (loads.size() != dof_count()) throw std::invalid_argument("solve_static: load size");
  const DofMap dmap = dof_map();
  CsrMatrix k, m;
  assemble_csr(&dmap, k, m);
  const Vector f = dmap.reduce(loads);
  const Vector u = numeric::solve(k.to_dense(), f);
  return dmap.expand(u);
}

Vector Frame3D::natural_frequencies(const ModalOptions& opts) const {
  CsrMatrix k, m;
  reduced_sparse(k, m);
  return solve_reduced_modes(k, m, opts).frequencies_hz;
}

Vector Frame3D::beam_stresses(const Vector& displacements) const {
  if (displacements.size() != dof_count())
    throw std::invalid_argument("beam_stresses: displacement size");
  Vector stresses;
  stresses.reserve(beams_.size());
  for (const Beam& b : beams_) {
    const Coord& p1 = coords_[b.n1];
    const Coord& p2 = coords_[b.n2];
    const double l = std::sqrt(std::pow(p2.x - p1.x, 2.0) + std::pow(p2.y - p1.y, 2.0) +
                               std::pow(p2.z - p1.z, 2.0));
    const Matrix t = beam3d_transformation(p1.x, p1.y, p1.z, p2.x, p2.y, p2.z);
    Vector ue(12);
    for (std::size_t d = 0; d < 6; ++d) {
      ue[d] = displacements[b.n1 * 6 + d];
      ue[6 + d] = displacements[b.n2 * 6 + d];
    }
    const Vector ul = t * ue;
    const Vector fl = beam3d_stiffness_local(b.mat, b.section, l) * ul;
    const double axial = std::fabs(fl[6]);  // axial force at node 2
    // Outer-fiber distances approximated from the section moments.
    const double cy = std::sqrt(b.section.area / 4.0);
    const double cz = cy;
    const double my = std::max(std::fabs(fl[4]), std::fabs(fl[10]));
    const double mz = std::max(std::fabs(fl[5]), std::fabs(fl[11]));
    stresses.push_back(axial / b.section.area + my * cy / b.section.iy +
                       mz * cz / b.section.iz);
  }
  return stresses;
}

}  // namespace aeropack::fem
