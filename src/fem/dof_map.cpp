#include "fem/dof_map.hpp"

#include <stdexcept>

#include "numeric/assembly.hpp"

namespace aeropack::fem {

static_assert(DofMap::kFixed == numeric::SparseAssembler::kDiscard,
              "DofMap::kFixed must match SparseAssembler::kDiscard so mapped "
              "DOF lists feed scatter() directly");

DofMap::DofMap(std::size_t full_dof_count) : fixed_(full_dof_count, false) {
  if (full_dof_count == 0) throw std::invalid_argument("DofMap: zero DOFs");
}

void DofMap::fix(std::size_t full_dof) {
  if (full_dof >= fixed_.size()) throw std::out_of_range("DofMap::fix");
  fixed_[full_dof] = true;
  built_ = false;
}

bool DofMap::is_fixed(std::size_t full_dof) const {
  if (full_dof >= fixed_.size()) throw std::out_of_range("DofMap::is_fixed");
  return fixed_[full_dof];
}

void DofMap::ensure_built() const {
  if (built_) return;
  to_free_.assign(fixed_.size(), kFixed);
  free_to_full_.clear();
  for (std::size_t i = 0; i < fixed_.size(); ++i)
    if (!fixed_[i]) {
      to_free_[i] = free_to_full_.size();
      free_to_full_.push_back(i);
    }
  built_ = true;
}

std::size_t DofMap::free_count() const {
  ensure_built();
  return free_to_full_.size();
}

std::size_t DofMap::to_free(std::size_t full_dof) const {
  if (full_dof >= fixed_.size()) throw std::out_of_range("DofMap::to_free");
  ensure_built();
  return to_free_[full_dof];
}

const std::vector<std::size_t>& DofMap::free_to_full() const {
  ensure_built();
  return free_to_full_;
}

std::vector<std::size_t> DofMap::map_dofs(const std::vector<std::size_t>& full_dofs) const {
  ensure_built();
  std::vector<std::size_t> out(full_dofs.size());
  for (std::size_t i = 0; i < full_dofs.size(); ++i) {
    if (full_dofs[i] >= fixed_.size()) throw std::out_of_range("DofMap::map_dofs");
    out[i] = to_free_[full_dofs[i]];
  }
  return out;
}

numeric::Vector DofMap::reduce(const numeric::Vector& full) const {
  if (full.size() != fixed_.size()) throw std::invalid_argument("DofMap::reduce: size mismatch");
  ensure_built();
  numeric::Vector out(free_to_full_.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = full[free_to_full_[i]];
  return out;
}

numeric::Vector DofMap::expand(const numeric::Vector& reduced) const {
  ensure_built();
  if (reduced.size() != free_to_full_.size())
    throw std::invalid_argument("DofMap::expand: size mismatch");
  numeric::Vector out(fixed_.size(), 0.0);
  for (std::size_t i = 0; i < reduced.size(); ++i) out[free_to_full_[i]] = reduced[i];
  return out;
}

}  // namespace aeropack::fem
