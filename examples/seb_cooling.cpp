// COSEE study: the seat electronic box with and without the two-phase
// cooling chain, replicating the paper's Fig. 10 experiment plus the
// qualification summary and a TIM trade (the NANOPACK motivation).
//
//   $ ./seb_cooling
#include <cstdio>

#include "core/qualification.hpp"
#include "core/seb.hpp"
#include "core/units.hpp"
#include "tim/tim_material.hpp"

using namespace aeropack;

namespace {
void sweep(const core::SebModel& model, const char* title) {
  const double t_air = core::celsius_to_kelvin(25.0);
  std::printf("\n%s\n", title);
  std::printf("  %-7s | %-12s | %-16s | %-16s | %-10s\n", "Q [W]", "no LHP [K]",
              "LHP horiz [K]", "LHP 22deg [K]", "LHP Q [W]");
  for (double q = 20.0; q <= 100.0; q += 20.0) {
    const auto a = model.solve(q, t_air, core::SebCooling::NaturalOnly);
    const auto b = model.solve(q, t_air, core::SebCooling::HeatPipesAndLhp, 0.0);
    const auto c = model.solve(q, t_air, core::SebCooling::HeatPipesAndLhp, 22.0);
    std::printf("  %-7.0f | %-12.1f | %-16.1f | %-16.1f | %-10.1f\n", q, a.dt_pcb_air,
                b.dt_pcb_air, c.dt_pcb_air, b.q_lhp_path);
  }
  std::printf("  capability at dT=60 K: natural %.0f W, LHP %.0f W\n",
              model.capability_at_dt(60.0, t_air, core::SebCooling::NaturalOnly),
              model.capability_at_dt(60.0, t_air, core::SebCooling::HeatPipesAndLhp));
}
}  // namespace

int main() {
  std::printf("COSEE seat-electronic-box cooling study (paper Fig. 10)\n");
  std::printf("=======================================================\n");

  // Aluminum seat (the paper's primary configuration).
  core::SebModel aluminum{core::SebDesign{}};
  sweep(aluminum, "Aluminum seat structure:");

  // Carbon-composite seat (the paper's alternative).
  core::SebDesign carbon_design;
  carbon_design.seat.material = materials::carbon_composite();
  core::SebModel carbon{carbon_design};
  sweep(carbon, "Carbon-composite seat structure:");

  // TIM trade on the interface joints (the NANOPACK motivation).
  std::printf("\nInterface-material trade at 80 W (LHP chain, aluminum seat):\n");
  for (const auto& tim : {tim::conventional_gap_pad(), tim::conventional_grease(),
                          tim::nanopack_multi_epoxy_silver_sphere(),
                          tim::nanopack_cnt_metal_polymer()}) {
    core::SebDesign d;
    d.joint_tim = tim;
    core::SebModel m{d};
    const auto pt =
        m.solve(80.0, core::celsius_to_kelvin(25.0), core::SebCooling::HeatPipesAndLhp);
    std::printf("  %-36s dT = %5.1f K (LHPs carry %5.1f W)\n", tim.name.c_str(),
                pt.dt_pcb_air, pt.q_lhp_path);
  }

  // Qualification campaign on the aluminum configuration.
  core::EquipmentUnderTest eut;
  eut.name = "COSEE seat + SEB";
  eut.mass = 4.5;
  eut.fundamental_frequency = 170.0;
  eut.damping_ratio = 0.05;
  eut.mount_section_modulus = 3.5e-7;
  eut.mount_length = 0.05;
  eut.mount_yield = materials::aluminum_6061().yield_strength;
  eut.board_edge = 0.30;
  eut.board_thickness = 2e-3;
  eut.critical_component_length = 0.035;
  eut.worst_junction_at_ambient = [&aluminum](double ambient_k) {
    return aluminum.solve(40.0, ambient_k, core::SebCooling::HeatPipesAndLhp).t_pcb + 12.0;
  };
  core::CampaignOptions opts;
  opts.climatic_low = core::celsius_to_kelvin(-25.0);
  opts.climatic_high = core::celsius_to_kelvin(55.0);
  const auto campaign = core::run_campaign(eut, opts);
  std::printf("\nQualification campaign (paper levels):\n");
  for (const auto& t : campaign.results)
    std::printf("  %-52s %s (margin %.2f)\n", t.test.c_str(), t.passed ? "PASS" : "FAIL",
                t.margin);
  std::printf("=> %s\n", campaign.all_passed ? "all tests passed without damage"
                                             : "campaign FAILED");
  return campaign.all_passed ? 0 : 1;
}
