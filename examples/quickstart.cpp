// Quickstart: describe a small avionics box, run the paper's Fig.-1
// packaging design procedure end to end, and print the design document.
//
//   $ ./quickstart
//
// Walks through: specification -> cooling technology selection (Level 1) ->
// board/component thermal analysis (Levels 2-3) -> modal placement against a
// frequency allocation plan -> random-vibration fatigue -> qualification
// campaign -> accept/reject. The first pass deliberately fails (hot CPU on a
// thin board) so the example also shows the Fig.-1 iteration loop: apply the
// Level-2 levers (low-power part, heavier copper, thicker drain) and rerun.
#include <cstdio>

#include "core/design_procedure.hpp"
#include "core/units.hpp"
#include "fem/plate.hpp"
#include "materials/solid.hpp"

using namespace aeropack;

int main() {
  // --- 1. The equipment: one module, one board, three dissipating parts.
  core::Equipment eq;
  eq.name = "demo nav box";
  eq.length = 0.30;
  eq.width = 0.20;
  eq.height = 0.15;

  core::Module mod;
  mod.name = "processor module";
  core::Board board;
  board.name = "CPU board";
  board.length = 0.20;
  board.width = 0.15;
  board.stackup.copper_layers = 6;
  board.drain_thickness = 1.0e-3;  // bonded aluminum core

  core::Component cpu;
  cpu.reference = "U1 (CPU)";
  cpu.power = 8.0;
  cpu.footprint_area = 9e-4;
  cpu.theta_jc = 0.7;
  cpu.x = 0.10;
  cpu.y = 0.075;
  cpu.part_type = reliability::PartType::Microprocessor;

  core::Component fpga;
  fpga.reference = "U2 (FPGA)";
  fpga.power = 5.0;
  fpga.footprint_area = 6e-4;
  fpga.theta_jc = 1.1;
  fpga.x = 0.15;
  fpga.y = 0.05;
  fpga.part_type = reliability::PartType::AnalogIc;

  core::Component reg;
  reg.reference = "Q3 (regulator)";
  reg.power = 3.0;
  reg.footprint_area = 2e-4;
  reg.theta_jc = 1.8;
  reg.x = 0.05;
  reg.y = 0.10;
  reg.part_type = reliability::PartType::PowerTransistor;

  board.components = {cpu, fpga, reg};
  mod.boards.push_back(board);
  eq.modules.push_back(mod);

  // --- 2. The specification (paper defaults: 125 C junction, 85 C ambient,
  //        40,000 h MTBF, 9 g, DO-160, -45/+55 C shock).
  core::Specification spec;
  spec.ambient_temperature = core::celsius_to_kelvin(40.0);

  // --- 3. Mechanical side: the board as a plate model, with a frequency
  //        allocation plan giving this board the 200-800 Hz band.
  fem::PlateModel plate(board.length, board.width, 2.0e-3, materials::fr4(), 6, 5);
  plate.set_edge(fem::EdgeSupport::Clamped, true, true, true, true);
  plate.add_smeared_mass(2.5);

  core::DesignInputs inputs{eq,
                            spec,
                            plate,
                            "CPU board",
                            {},
                            fem::do160_curve_c1(),
                            /*damping=*/0.04,
                            /*critical_component_length=*/0.03,
                            /*thermal_mesh=*/16};
  inputs.plan.allocate("chassis", 50.0, 180.0);
  inputs.plan.allocate("CPU board", 200.0, 800.0);

  // --- 4. Run the procedure and print the packaging design document.
  core::DesignReport report = core::run_design_procedure(inputs);
  std::printf("%s", report.to_text().c_str());

  if (!report.accepted) {
    // --- 5. The Fig.-1 loop: iterate the design. Swap in the low-power CPU
    //        variant, add copper and a thicker drain, improve the attach.
    std::printf(
        "\n>>> design iteration: low-power CPU variant, 10-layer stackup, 1.6 mm drain <<<\n\n");
    auto& b2 = inputs.equipment.modules[0].boards[0];
    b2.stackup.copper_layers = 10;
    b2.drain_thickness = 1.6e-3;
    b2.components[0].power = 5.0;   // low-power CPU SKU
    b2.components[0].theta_jc = 0.5;
    b2.components[1].power = 3.5;
    report = core::run_design_procedure(inputs);
    std::printf("%s", report.to_text().c_str());
  }
  return report.accepted ? 0 : 1;
}
