// Ariane navigation unit (paper Fig. 2): mechanical design to a frequency
// allocation plan. The power supply's main resonant mode must land "around
// 500 Hz"; the launcher environment is a severe random spectrum, so we also
// check random-vibration response and Steinberg fatigue of the chosen board,
// and the 9 g quasi-static case.
//
//   $ ./ariane_navigation_unit
#include <cstdio>

#include "core/design_procedure.hpp"
#include "core/units.hpp"
#include "fem/fatigue.hpp"
#include "fem/plate.hpp"
#include "fem/sdof.hpp"
#include "fem/shock.hpp"
#include "materials/solid.hpp"

using namespace aeropack;

namespace {
fem::PlateModel power_supply_board(double thickness, double doubler) {
  fem::PlateModel p(0.16, 0.10, thickness, materials::fr4(), 8, 5);
  p.set_edge(fem::EdgeSupport::Clamped, true, true, true, true);
  p.add_smeared_mass(2.5);
  p.add_point_mass(0.05, 0.05, 0.18);  // transformer
  p.add_point_mass(0.11, 0.05, 0.09);  // output inductor
  if (doubler > 1.0) p.add_doubler(0.03, 0.13, 0.02, 0.08, doubler);
  return p;
}
}  // namespace

int main() {
  std::printf("Ariane navigation unit — power supply modal placement\n");
  std::printf("=====================================================\n");

  core::FrequencyAllocationPlan plan;
  plan.allocate("chassis", 80.0, 200.0);
  plan.allocate("power supply", 450.0, 550.0);
  plan.allocate("cca stack", 600.0, 900.0);
  std::printf("frequency allocation plan:\n");
  for (const auto& b : plan.bands())
    std::printf("  %-14s: %4.0f - %4.0f Hz\n", b.owner.c_str(), b.lo_hz, b.hi_hz);

  // Design iteration: stiffen until the main mode is inside the band.
  struct Option {
    const char* name;
    double thickness, doubler;
  };
  const Option options[] = {{"1.6 mm bare", 1.6e-3, 1.0},
                            {"2.4 mm", 2.4e-3, 1.0},
                            {"2.4 mm + doubler", 2.4e-3, 1.8},
                            {"3.2 mm + doubler", 3.2e-3, 1.8}};
  std::printf("\ndesign sweep:\n");
  double f_final = 0.0;
  double thickness_final = 0.0;
  for (const auto& opt : options) {
    const double f1 = power_supply_board(opt.thickness, opt.doubler).fundamental_frequency();
    const bool ok = plan.complies("power supply", f1);
    std::printf("  %-20s f1 = %4.0f Hz  %s\n", opt.name, f1, ok ? "<- in band" : "");
    if (ok && f_final == 0.0) {
      f_final = f1;
      thickness_final = opt.thickness;
    }
  }
  if (f_final == 0.0) {
    std::printf("no option reached the allocated band\n");
    return 1;
  }

  // Launcher random environment (a severe shaped spectrum, ~12 grms).
  const auto spectrum = fem::navy_ps_spectrum(12.0);
  const double zeta = 0.04;
  const double asd = spectrum(f_final);
  const double grms = fem::miles_grms(f_final, zeta, asd);
  const auto fatigue =
      fem::steinberg_assess(0.16, thickness_final, 0.025, 1.0, 1.0, f_final, grms);
  std::printf("\nrandom vibration at %0.f Hz (input %.1f grms overall):\n", f_final,
              spectrum.grms());
  std::printf("  board response: %.1f grms, 3-sigma %.1f g\n", grms, 3.0 * grms);
  std::printf("  Steinberg margin: %.2f (%s), life at this level: %.0f h\n", fatigue.margin,
              fatigue.acceptable ? "acceptable" : "NOT acceptable",
              fatigue.life_hours_at_20m_cycles);

  // 9 g quasi-static case on the unit's mounting feet.
  const double stress =
      fem::quasi_static_cantilever_stress(9.0, 6.0, 0.05, 4e-7);
  std::printf("\n9 g quasi-static: bracket stress %.0f MPa vs %.0f MPa yield (margin %.1f)\n",
              stress / 1e6, materials::aluminum_7075().yield_strength / 1e6,
              materials::aluminum_7075().yield_strength / stress);

  // Shock response spectrum of a 30 g / 11 ms half-sine (stage separation).
  const auto pulse = fem::half_sine_pulse(30.0 * core::gravity, 0.011);
  const auto srs =
      fem::shock_response_spectrum(pulse, 0.011, {100.0, f_final, 2000.0}, 0.05);
  std::printf("\nSRS of 30 g / 11 ms half-sine at the PS mode (%.0f Hz): %.0f g\n", f_final,
              srs[1] / core::gravity);

  const bool ok = fatigue.acceptable && stress < materials::aluminum_7075().yield_strength;
  std::printf("\n=> power supply design %s\n", ok ? "ACCEPTED" : "REJECTED");
  return ok ? 0 : 1;
}
