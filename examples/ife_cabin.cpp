// IFE cabin architecture (paper Fig. 7): many seat electronic boxes in a
// cabin zone, no connection to the aircraft ECS. For each seat-class power
// level we pick the cooling route (fans vs passive two-phase), then roll up
// zone heat and reliability — the fleet-level argument the paper makes for
// COSEE ("extra cost, energy consumption when multiplied by the seat
// number, reliability and maintenance concern").
//
//   $ ./ife_cabin
#include <cstdio>
#include <vector>

#include "core/seb.hpp"
#include "core/units.hpp"
#include "reliability/mtbf.hpp"
#include "reliability/spares.hpp"

using namespace aeropack;

namespace {
struct SeatClass {
  const char* name;
  int seats;
  double seb_power;  // [W]
};

std::vector<reliability::Part> seb_bom(double junction_k, bool with_fan) {
  std::vector<reliability::Part> bom;
  const auto add = [&](const char* ref, reliability::PartType t, int n) {
    reliability::Part p;
    p.reference = ref;
    p.type = t;
    p.count = n;
    p.junction_temperature = junction_k;
    p.quality = reliability::Quality::Commercial;  // IFE is COTS-heavy
    bom.push_back(p);
  };
  add("SoC", reliability::PartType::Microprocessor, 1);
  add("RAM", reliability::PartType::Memory, 2);
  add("PMIC", reliability::PartType::AnalogIc, 4);
  add("ETH", reliability::PartType::AnalogIc, 2);
  add("R/C", reliability::PartType::Resistor, 150);
  add("CAP", reliability::PartType::CeramicCapacitor, 120);
  add("CONN", reliability::PartType::Connector, 5);
  if (with_fan) {
    // A fan is mechanically the weakest link: model as a connector-class
    // wear item with a deliberately higher rate.
    reliability::Part fan;
    fan.reference = "FAN";
    fan.type = reliability::PartType::Inductor;  // motor winding archetype
    fan.count = 8;                               // rate multiplier via count
    fan.junction_temperature = junction_k;
    fan.quality = reliability::Quality::Commercial;
    bom.push_back(fan);
  }
  return bom;
}
}  // namespace

int main() {
  std::printf("IFE cabin zone study — passive two-phase vs fan cooling\n");
  std::printf("=======================================================\n");

  const double cabin = core::celsius_to_kelvin(25.0);
  const SeatClass classes[] = {{"economy", 180, 30.0}, {"premium", 42, 55.0},
                               {"business", 28, 85.0}};

  core::SebModel seb{core::SebDesign{}};

  double zone_heat = 0.0;
  std::printf("\n  %-10s | %-6s | %-8s | %-16s | %-14s | %-12s\n", "class", "seats",
              "W / SEB", "passive dT [K]", "within 60 K?", "route");
  std::printf("  -----------+--------+----------+------------------+----------------+------------\n");
  int passive_classes = 0;
  for (const auto& sc : classes) {
    const auto pt = seb.solve(sc.seb_power, cabin, core::SebCooling::HeatPipesAndLhp, 0.0);
    const bool passive_ok = pt.dt_pcb_air <= 60.0;
    passive_classes += passive_ok ? 1 : 0;
    zone_heat += sc.seats * sc.seb_power;
    std::printf("  %-10s | %-6d | %-8.0f | %-16.1f | %-14s | %-12s\n", sc.name, sc.seats,
                sc.seb_power, pt.dt_pcb_air, passive_ok ? "yes" : "no",
                passive_ok ? "HP + LHP" : "needs fan");
  }
  std::printf("\n  total zone heat into the cabin: %.1f kW\n", zone_heat / 1000.0);

  // Reliability rollup per seat: passive chain vs fan-cooled box.
  const auto pt40 = seb.solve(40.0, cabin, core::SebCooling::HeatPipesAndLhp, 0.0);
  const auto pt40_fan = seb.solve(40.0, cabin, core::SebCooling::NaturalOnly, 0.0);
  // Fan keeps the box ~20 K cooler than pure natural convection.
  const double tj_passive = pt40.t_pcb + 10.0;
  const double tj_fan = pt40_fan.t_pcb - 20.0 + 10.0;
  const auto mtbf_passive = reliability::predict_mtbf(
      seb_bom(tj_passive, false), reliability::Environment::AirborneInhabitedCargo);
  const auto mtbf_fan = reliability::predict_mtbf(
      seb_bom(tj_fan, true), reliability::Environment::AirborneInhabitedCargo);

  std::printf("\n  per-SEB MTBF @ 40 W: passive %.0f h vs fan-cooled %.0f h\n",
              mtbf_passive.mtbf_hours, mtbf_fan.mtbf_hours);
  const int total_seats = 180 + 42 + 28;
  const double fleet_factor = mtbf_passive.mtbf_hours / mtbf_fan.mtbf_hours;
  std::printf("  cabin of %d seats: %.2fx fewer SEB removals with the passive chain\n",
              total_seats, fleet_factor);

  // Spares provisioning for the airline (3500 h/yr utilization, 45-day shop
  // turnaround, 95 % fill rate).
  const std::size_t spares_passive = reliability::spares_required(
      mtbf_passive.mtbf_hours, total_seats, 3500.0, 45.0, 0.95);
  const std::size_t spares_fan = reliability::spares_required(
      mtbf_fan.mtbf_hours, total_seats, 3500.0, 45.0, 0.95);
  std::printf("  spares pool @95%% fill: passive %zu boxes vs fan-cooled %zu boxes\n",
              spares_passive, spares_fan);
  std::printf("\n=> %d of 3 seat classes can be cooled fully passively (paper's COSEE goal)\n",
              passive_classes);
  return passive_classes >= 2 ? 0 : 1;
}
