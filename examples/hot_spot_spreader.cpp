// Hot-spot engineering study: a 10 W/cm^2 component (the paper's Section-IV
// head-ache) solved three ways —
//   1. bare forced air from the ARINC 600 budget (fails),
//   2. a copper spreader plate + plate-fin heat sink,
//   3. a vapor chamber + the same heat sink (the two-phase answer),
// plus a heat-pipe transport design from the sizing assistant.
//
//   $ ./hot_spot_spreader
#include <cstdio>

#include "core/units.hpp"
#include "materials/fluids.hpp"
#include "materials/solid.hpp"
#include "thermal/forced_air.hpp"
#include "thermal/heatsink.hpp"
#include "twophase/designer.hpp"
#include "twophase/vapor_chamber.hpp"

using namespace aeropack;

int main() {
  std::printf("Hot-spot study: 10 W over 1 cm^2 (10 W/cm^2), 45 C local air\n");
  std::printf("============================================================\n");

  const double q = 10.0;          // [W]
  const double source_area = 1e-4;
  const double t_air = core::celsius_to_kelvin(45.0);
  const double t_limit = core::celsius_to_kelvin(110.0);

  // --- 1. Bare spot under ARINC 600 card-channel air.
  thermal::ArincAirSupply supply;
  supply.inlet_temperature = t_air;
  thermal::CardChannel chan;
  const auto bare = thermal::analyze_hot_spot(supply, chan, 100.0, q / source_area, 0.5,
                                              t_limit);
  std::printf("\n1) bare spot, standard ARINC flow:    surface %.0f C  (%s)\n",
              core::kelvin_to_celsius(bare.surface_temperature),
              bare.feasible ? "ok" : "FAILS");

  // --- 2. Copper spreader (90 x 90 x 3 mm) + plate-fin sink, natural conv.
  thermal::HeatSink sink;
  sink.base_length = 0.09;
  sink.base_width = 0.09;
  const double t_base_cu = thermal::heatsink_base_temperature(sink, q, t_air);
  // Film coefficient equivalent of the sink on the spreader's back face.
  const double g_sink = q / (t_base_cu - t_air);
  const double h_eq = g_sink / (0.09 * 0.09);
  const double r_cu = thermal::spreading_resistance(source_area, 0.09 * 0.09, 3e-3,
                                                    materials::copper().conductivity, h_eq);
  const double t_cu = t_air + q * r_cu;
  std::printf("2) copper spreader + finned sink:     source %.1f C  (%s)\n",
              core::kelvin_to_celsius(t_cu), t_cu <= t_limit ? "ok" : "FAILS");

  // --- 3. Vapor chamber + the same sink.
  twophase::VaporChamber vc(materials::water(), twophase::VaporChamberGeometry{});
  const double r_vc = vc.spreading_resistance(330.0, source_area, h_eq);
  const double t_vc = t_air + q * r_vc;
  std::printf("3) vapor chamber + finned sink:       source %.1f C  (%s)\n",
              core::kelvin_to_celsius(t_vc), t_vc <= t_limit ? "ok" : "FAILS");
  std::printf("   chamber limits: capillary %.0f W, boiling %.0f W on this source\n",
              vc.capillary_limit(330.0), vc.boiling_limit(330.0, source_area));

  // --- 4. If the sink must live 15 cm away: size a transport heat pipe.
  twophase::TransportRequirement req;
  req.power = q;
  req.transport_length = 0.15;
  req.t_vapor = 330.0;
  req.adverse_tilt_rad = 0.17;  // ~10 degrees, any aircraft attitude
  const auto design = twophase::design_heat_pipe(req);
  if (design) {
    std::printf("\n4) transport pipe for a remote sink: %.0f mm OD %s/%s pipe\n",
                design->geometry.outer_diameter * 1e3, design->fluid.c_str(),
                design->wick.kind.c_str());
    std::printf("   capacity %.0f W (%s-limited), resistance %.2f K/W, mass %.0f g\n",
                design->capacity, design->governing_limit.c_str(), design->resistance,
                design->mass * 1e3);
  } else {
    std::printf("\n4) no single pipe satisfies the duty -> escalate to an LHP\n");
  }

  const bool solved = (t_vc <= t_limit) && design.has_value();
  std::printf("\n=> two-phase spreading %s the 10 W/cm^2 hot spot the paper flags\n",
              solved ? "SOLVES" : "does not solve");
  return solved ? 0 : 1;
}
